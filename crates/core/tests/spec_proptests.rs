//! Property tests for the experiment-spec layer: randomly generated specs
//! must round-trip through the hand-rolled JSON codec exactly —
//! `parse(serialize(spec)) == spec` — and serialization must stay a pure
//! function of the spec.

use hqw_core::experiments::Scale;
use hqw_core::fabric::{
    AnnealerConfig, ArrivalProcess, BackendMix, BackendSpec, FabricGridConfig, FabricMode,
    MockQpuConfig, NetworkModel, PtConfig, RealtimeConfig, SaPoolConfig, TabuConfig,
};
use hqw_core::scenario::SnrSweepConfig;
use hqw_core::sched::{ClassMix, SchedOptions, SchedPolicy};
use hqw_core::sched_grid::SchedGridConfig;
use hqw_core::spec::{CannedKind, CannedSpec, ExperimentSpec};
use hqw_core::stream::{CostModel, DispatchPolicy, StreamGridConfig};
use hqw_math::Rng64;
use hqw_phy::channel::{ChannelModel, TrackConfig};
use hqw_phy::modulation::Modulation;
use hqw_qubo::pt::PtParams;
use hqw_qubo::sa::{SaParams, SweepKernel};
use hqw_qubo::tabu::TabuParams;
use proptest::prelude::*;

/// A "nice" positive float: numbers of the magnitude specs actually carry,
/// with enough decimal entropy to exercise the float codec.
fn pos_f64(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    rng.next_range(lo, hi)
}

fn arbitrary_modulation(rng: &mut Rng64) -> Modulation {
    Modulation::ALL[rng.next_index(Modulation::ALL.len())]
}

fn arbitrary_track(rng: &mut Rng64) -> TrackConfig {
    let n_users = 1 + rng.next_index(4);
    TrackConfig {
        n_users,
        n_rx: n_users + rng.next_index(3),
        modulation: arbitrary_modulation(rng),
        rho: rng.next_f64(),
        noise_variance: pos_f64(rng, 0.0, 2.0),
    }
}

fn arbitrary_sa(rng: &mut Rng64) -> SaParams {
    let beta_initial = pos_f64(rng, 0.01, 1.0);
    SaParams {
        beta_initial,
        beta_final: beta_initial + pos_f64(rng, 0.1, 20.0),
        sweeps: 1 + rng.next_index(200),
        num_reads: 1 + rng.next_index(32),
        threads: rng.next_index(4),
        kernel: if rng.next_bool() {
            SweepKernel::Fast
        } else {
            SweepKernel::Exact
        },
    }
}

fn arbitrary_cost(rng: &mut Rng64) -> CostModel {
    CostModel {
        base_us: pos_f64(rng, 0.0, 50.0),
        us_per_node: pos_f64(rng, 0.0, 1.0),
        us_per_sweep: pos_f64(rng, 0.0, 5.0),
    }
}

fn arbitrary_backend(rng: &mut Rng64) -> BackendSpec {
    match rng.next_index(6) {
        0 => BackendSpec::SaPool(SaPoolConfig {
            workers: 1 + rng.next_index(4),
            max_batch: 1 + rng.next_index(8),
            sa: arbitrary_sa(rng),
        }),
        4 => {
            let beta_min = pos_f64(rng, 0.01, 1.0);
            BackendSpec::Pt(PtConfig {
                workers: 1 + rng.next_index(4),
                max_batch: 1 + rng.next_index(8),
                pt: PtParams {
                    replicas: 2 + rng.next_index(8),
                    sweeps: 1 + rng.next_index(128),
                    swap_interval: 1 + rng.next_index(8),
                    beta_min,
                    beta_max: beta_min + pos_f64(rng, 0.5, 20.0),
                },
            })
        }
        5 => BackendSpec::Tabu(TabuConfig {
            workers: 1 + rng.next_index(4),
            max_batch: 1 + rng.next_index(8),
            tabu: TabuParams {
                tenure: 1 + rng.next_index(20),
                max_iters: 1 + rng.next_index(2000),
                stall_limit: 1 + rng.next_index(500),
            },
        }),
        k @ (1 | 2) => {
            let config = AnnealerConfig {
                num_reads: 1 + rng.next_index(8),
                anneal_us: pos_f64(rng, 0.5, 10.0),
                sweeps_per_us: 1 + rng.next_index(16),
                capacity: 1 + rng.next_index(4),
                max_batch: 1 + rng.next_index(8),
                kernel: SweepKernel::Exact,
            };
            if k == 1 {
                BackendSpec::Pimc(config)
            } else {
                BackendSpec::Svmc(config)
            }
        }
        _ => BackendSpec::MockQpu(MockQpuConfig {
            num_reads: 1 + rng.next_index(8),
            anneal_us: pos_f64(rng, 0.5, 10.0),
            sweeps_per_us: 1 + rng.next_index(16),
            trotter_slices: 2 + rng.next_index(30),
            max_batch: 1 + rng.next_index(8),
            network: NetworkModel {
                rtt_base_us: pos_f64(rng, 0.0, 100.0),
                jitter_us: pos_f64(rng, 0.0, 30.0),
            },
            programming_us: pos_f64(rng, 0.0, 300.0),
            embed_derive_us_per_qubit: pos_f64(rng, 0.0, 5.0),
            chain_strength: pos_f64(rng, 0.5, 4.0),
        }),
    }
}

fn arbitrary_arrival(rng: &mut Rng64) -> ArrivalProcess {
    match rng.next_index(4) {
        0 => ArrivalProcess::Periodic,
        1 => ArrivalProcess::Bursty {
            burst: 1 + rng.next_index(8),
        },
        2 => ArrivalProcess::Diurnal {
            amplitude: rng.next_range(0.0, 0.99),
            cycle_frames: 2 + rng.next_index(64),
        },
        _ => ArrivalProcess::HeavyTailed {
            alpha: rng.next_range(1.1, 4.0),
        },
    }
}

fn arbitrary_policy(rng: &mut Rng64) -> SchedPolicy {
    match rng.next_index(3) {
        0 => SchedPolicy::Static,
        1 => SchedPolicy::Ewma {
            shift: rng.next_index(17) as u32,
        },
        _ => SchedPolicy::Ucb {
            explore_milli: rng.next_index(4001) as u32,
        },
    }
}

fn arbitrary_class_mix(rng: &mut Rng64) -> ClassMix {
    if rng.next_bool() {
        ClassMix::default()
    } else {
        ClassMix {
            urllc: 1 + rng.next_index(4) as u32,
            embb: rng.next_index(4) as u32,
            bulk: rng.next_index(4) as u32,
        }
    }
}

fn arbitrary_sched(rng: &mut Rng64) -> SchedOptions {
    SchedOptions {
        policy: arbitrary_policy(rng),
        assumed_cost: if rng.next_bool() {
            Some(arbitrary_cost(rng))
        } else {
            None
        },
        classes: arbitrary_class_mix(rng),
    }
}

fn arbitrary_mode(rng: &mut Rng64) -> FabricMode {
    if rng.next_bool() {
        FabricMode::Virtual
    } else {
        FabricMode::Realtime(RealtimeConfig {
            producers: 1 + rng.next_index(4),
            queue_shards: 1 + rng.next_index(4),
        })
    }
}

fn arbitrary_spec(seed: u64) -> ExperimentSpec {
    let mut rng = Rng64::new(seed);
    match rng.next_index(5) {
        0 => {
            let n_users = 1 + rng.next_index(6);
            ExperimentSpec::Ber(SnrSweepConfig {
                n_users,
                n_rx: n_users + rng.next_index(3),
                modulation: arbitrary_modulation(&mut rng),
                channel: ChannelModel::ALL[rng.next_index(ChannelModel::ALL.len())],
                snr_db: (0..rng.next_index(8))
                    .map(|_| rng.next_range(-10.0, 40.0))
                    .collect(),
                realizations: 1 + rng.next_index(50),
                seed: rng.next_u64(),
                threads: rng.next_index(8),
            })
        }
        1 => {
            let n_policies = 1 + rng.next_index(DispatchPolicy::ALL.len());
            ExperimentSpec::Stream(StreamGridConfig {
                track: arbitrary_track(&mut rng),
                frames: 1 + rng.next_index(256),
                arrival_periods_us: (0..1 + rng.next_index(5))
                    .map(|_| pos_f64(&mut rng, 10.0, 600.0))
                    .collect(),
                rhos: (0..1 + rng.next_index(4)).map(|_| rng.next_f64()).collect(),
                policies: DispatchPolicy::ALL[..n_policies].to_vec(),
                deadline_us: pos_f64(&mut rng, 0.0, 1000.0),
                cost: arbitrary_cost(&mut rng),
                sa: arbitrary_sa(&mut rng),
                seed: rng.next_u64(),
                threads: rng.next_index(8),
            })
        }
        2 => ExperimentSpec::Fabric(FabricGridConfig {
            track: arbitrary_track(&mut rng),
            frames_per_cell: 1 + rng.next_index(64),
            cell_counts: (0..1 + rng.next_index(3))
                .map(|_| 1 + rng.next_index(8))
                .collect(),
            arrival_periods_us: (0..1 + rng.next_index(4))
                .map(|_| pos_f64(&mut rng, 50.0, 600.0))
                .collect(),
            mixes: (0..1 + rng.next_index(3))
                .map(|m| BackendMix {
                    name: format!("mix-{m}"),
                    backends: (0..1 + rng.next_index(3))
                        .map(|_| arbitrary_backend(&mut rng))
                        .collect(),
                })
                .collect(),
            arrival: arbitrary_arrival(&mut rng),
            mode: arbitrary_mode(&mut rng),
            sched: arbitrary_sched(&mut rng),
            deadline_us: pos_f64(&mut rng, 0.0, 2000.0),
            cost: arbitrary_cost(&mut rng),
            seed: rng.next_u64(),
            threads: rng.next_index(8),
        }),
        3 => ExperimentSpec::Sched(SchedGridConfig {
            track: arbitrary_track(&mut rng),
            frames_per_cell: 1 + rng.next_index(32),
            cell_counts: (0..1 + rng.next_index(3))
                .map(|_| 1 + rng.next_index(6))
                .collect(),
            arrival_periods_us: (0..1 + rng.next_index(3))
                .map(|_| pos_f64(&mut rng, 50.0, 600.0))
                .collect(),
            mix: BackendMix {
                name: "mix".into(),
                backends: (0..1 + rng.next_index(3))
                    .map(|_| arbitrary_backend(&mut rng))
                    .collect(),
            },
            policy: arbitrary_policy(&mut rng),
            classes: arbitrary_class_mix(&mut rng),
            assumed_cost: arbitrary_cost(&mut rng),
            deadline_us: pos_f64(&mut rng, 0.0, 2000.0),
            cost: arbitrary_cost(&mut rng),
            seed: rng.next_u64(),
            threads: rng.next_index(8),
        }),
        _ => ExperimentSpec::Canned(CannedSpec {
            experiment: CannedKind::ALL[rng.next_index(CannedKind::ALL.len())],
            scale: Scale {
                instances: 1 + rng.next_index(40),
                reads: 1 + rng.next_index(4000),
                harvest_reads: 1 + rng.next_index(40_000),
                grid_thin: 1 + rng.next_index(6),
            },
            seed: rng.next_u64(),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline property: parse(serialize(spec)) == spec, exactly.
    #[test]
    fn spec_round_trips_through_json(seed in any::<u64>()) {
        let spec = arbitrary_spec(seed);
        prop_assume!(spec.validate().is_ok());
        let text = spec.to_json();
        let parsed = ExperimentSpec::parse(&text)
            .unwrap_or_else(|e| panic!("serialized spec failed to parse: {e}\n{text}"));
        prop_assert_eq!(&parsed, &spec);
        // Serialization is a pure function: a second trip is bit-identical.
        prop_assert_eq!(parsed.to_json(), text);
    }

    /// Seeds — including values above 2^53, which a double cannot hold —
    /// survive the codec exactly.
    #[test]
    fn extreme_seeds_survive(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let raw = match rng.next_index(3) {
            0 => u64::MAX - rng.next_below(1024),
            1 => (1u64 << 53) + rng.next_below(1 << 20),
            _ => rng.next_u64(),
        };
        let spec = ExperimentSpec::Canned(CannedSpec {
            experiment: CannedKind::Fig3,
            scale: Scale::quick(),
            seed: raw,
        });
        let parsed = ExperimentSpec::parse(&spec.to_json()).expect("valid spec");
        prop_assert_eq!(parsed.seed(), raw);
    }
}
