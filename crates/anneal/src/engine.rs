//! The annealing-engine abstraction and shared hot-loop machinery.
//!
//! An [`AnnealEngine`] consumes an Ising problem, a device profile, a
//! schedule and (for reverse schedules) a programmed initial state, and
//! returns one classical readout — exactly one "anneal read" of the paper's
//! hardware. Two engines are provided:
//!
//! * [`crate::pimc::PimcEngine`] — path-integral (Trotterized) quantum Monte
//!   Carlo, the standard classical simulation of transverse-field annealing.
//! * [`crate::svmc::SvmcEngine`] — spin-vector Monte Carlo, the
//!   semi-classical O(2)-rotor model often used to mimic D-Wave devices.
//!
//! Time calibration: schedules are expressed in microseconds of *programmed*
//! anneal time; engines convert at [`AnnealParams::sweeps_per_us`] Monte
//! Carlo sweeps per microsecond. All wall-clock metrics in `hqw-core` charge
//! programmed microseconds (as the paper does), never simulator CPU time, so
//! this constant only controls simulation fidelity.

use crate::dwave::DWaveProfile;
use crate::schedule::AnnealSchedule;
use hqw_math::Rng64;
use hqw_qubo::{Ising, SweepKernel};

/// Transverse-field-gated kinetics ("freeze-out").
///
/// On analog hardware, computational-basis spin flips are *mediated by the
/// transverse field*: in the weak-coupling open-system picture, thermal
/// transition rates scale with the qubit tunneling amplitude, vanishing as
/// `A(s) → 0`. Plain Metropolis dynamics has no such gate — it keeps
/// performing classical repair arbitrarily late in the anneal, which makes
/// the simulator behave like simulated annealing (flattering forward
/// annealing and erasing the freeze-out that locks in both FA's diabatic
/// errors and RA's programmed state).
///
/// The gate multiplies every acceptance probability by
/// `g(s) = min(1, (A(s)/a_ref)^exponent)` — a *lazy* Metropolis chain, so
/// the stationary distribution is untouched while the kinetics slow and
/// stop as fluctuations vanish.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreezeOut {
    /// Transverse-field scale (GHz) above which dynamics runs at full rate.
    pub a_ref_ghz: f64,
    /// Rate exponent (2.0 ≈ golden-rule scaling of single-qubit flips).
    pub exponent: f64,
}

impl Default for FreezeOut {
    fn default() -> Self {
        FreezeOut {
            a_ref_ghz: 2.0,
            exponent: 2.0,
        }
    }
}

impl FreezeOut {
    /// Rate factor `g(s) ∈ [0, 1]` at transverse field `a_ghz`.
    #[inline]
    pub fn gate(&self, a_ghz: f64) -> f64 {
        let ratio = (a_ghz / self.a_ref_ghz).max(0.0);
        ratio.powf(self.exponent).min(1.0)
    }
}

/// Engine-independent simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealParams {
    /// Monte Carlo sweeps simulated per programmed microsecond.
    pub sweeps_per_us: usize,
    /// Override the device inverse temperature (1/GHz); `None` uses the
    /// profile's physical `β`.
    pub beta_override: Option<f64>,
    /// Transverse-field-gated kinetics; `None` disables the gate (pure
    /// Metropolis dynamics, SA-like late-anneal behaviour).
    pub freeze_out: Option<FreezeOut>,
    /// Sweep kernel: the bit-identical [`SweepKernel::Exact`] default, or
    /// the vectorized [`SweepKernel::Fast`] mode (bit-packed replicas,
    /// f32 fields, draw-skipping rejects — statistically equivalent, not
    /// bit-identical). Engines fall back to `Exact` where `Fast` does not
    /// apply (e.g. more than 64 Trotter slices).
    pub kernel: SweepKernel,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            sweeps_per_us: 32,
            beta_override: None,
            freeze_out: Some(FreezeOut::default()),
            kernel: SweepKernel::Exact,
        }
    }
}

impl AnnealParams {
    /// Effective inverse temperature for a profile.
    pub fn beta(&self, profile: &DWaveProfile) -> f64 {
        self.beta_override.unwrap_or_else(|| profile.beta())
    }

    /// Kinetic gate factor at transverse field `a_ghz` (1.0 when disabled).
    #[inline]
    pub fn gate(&self, a_ghz: f64) -> f64 {
        match &self.freeze_out {
            Some(f) => f.gate(a_ghz),
            None => 1.0,
        }
    }

    /// Number of sweeps for a schedule (at least 1).
    pub fn total_sweeps(&self, schedule: &AnnealSchedule) -> usize {
        ((schedule.duration_us() * self.sweeps_per_us as f64).round() as usize).max(1)
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics when `sweeps_per_us == 0`, a non-positive beta override, or a
    /// non-positive freeze-out reference field.
    pub fn validate(&self) {
        assert!(
            self.sweeps_per_us > 0,
            "AnnealParams: sweeps_per_us must be > 0"
        );
        if let Some(b) = self.beta_override {
            assert!(b > 0.0, "AnnealParams: beta override must be > 0");
        }
        if let Some(f) = &self.freeze_out {
            assert!(f.a_ref_ghz > 0.0, "AnnealParams: a_ref must be > 0");
            assert!(
                f.exponent > 0.0,
                "AnnealParams: freeze-out exponent must be > 0"
            );
        }
    }
}

/// One anneal read: problem in, classical state out.
pub trait AnnealEngine: Send + Sync {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Runs one read.
    ///
    /// `initial` is required exactly when `schedule.requires_initial_state()`
    /// (reverse annealing); forward schedules ignore it.
    ///
    /// # Panics
    /// Panics when a reverse schedule is given no initial state, or the
    /// initial state length mismatches the problem.
    fn run(
        &self,
        problem: &Ising,
        profile: &DWaveProfile,
        schedule: &AnnealSchedule,
        params: &AnnealParams,
        initial: Option<&[i8]>,
        rng: &mut Rng64,
    ) -> Vec<i8>;
}

/// Validates and resolves the initial state for a schedule.
///
/// # Panics
/// See [`AnnealEngine::run`].
pub(crate) fn resolve_initial(
    schedule: &AnnealSchedule,
    n: usize,
    initial: Option<&[i8]>,
) -> Option<Vec<i8>> {
    if schedule.requires_initial_state() {
        let init = initial
            .expect("reverse annealing schedule requires a programmed initial state (paper §4.1)");
        assert_eq!(init.len(), n, "initial state length mismatch");
        debug_assert!(init.iter().all(|&s| s == 1 || s == -1));
        Some(init.to_vec())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_local_fields_match_sparse() {
        // The engines sweep over the shared CSR representation; its fields
        // must agree with the adjacency-list model they are built from.
        let mut rng = Rng64::new(3);
        let q = hqw_qubo::generator::random_qubo(12, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = hqw_qubo::CsrIsing::from_ising(&ising);
        let spins: Vec<i8> = (0..12)
            .map(|_| if rng.next_bool() { 1 } else { -1 })
            .collect();
        for i in 0..12 {
            assert!((csr.local_field(&spins, i) - ising.local_field(&spins, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn total_sweeps_scales_with_duration() {
        let p = AnnealParams {
            sweeps_per_us: 10,
            ..Default::default()
        };
        let s = AnnealSchedule::forward(2.5).unwrap();
        assert_eq!(p.total_sweeps(&s), 25);
        let tiny = AnnealSchedule::forward(0.001).unwrap();
        assert_eq!(p.total_sweeps(&tiny), 1, "at least one sweep");
    }

    #[test]
    fn beta_override_takes_precedence() {
        let profile = DWaveProfile::default();
        let default = AnnealParams::default();
        assert!((default.beta(&profile) - profile.beta()).abs() < 1e-12);
        let custom = AnnealParams {
            beta_override: Some(7.0),
            ..Default::default()
        };
        assert_eq!(custom.beta(&profile), 7.0);
    }

    #[test]
    #[should_panic(expected = "requires a programmed initial state")]
    fn reverse_without_initial_panics() {
        let s = AnnealSchedule::reverse(0.5, 1.0).unwrap();
        resolve_initial(&s, 4, None);
    }

    #[test]
    fn forward_ignores_initial() {
        let s = AnnealSchedule::forward(1.0).unwrap();
        assert!(resolve_initial(&s, 4, Some(&[1, 1, -1, 1])).is_none());
    }
}
