//! The D-Wave-like sampler front end.
//!
//! [`QuantumSampler`] reproduces the workflow the paper ran against the real
//! 2000Q (§2): program a QUBO/Ising problem, submit `N_s` reads under an
//! anneal schedule (optionally with a reverse-anneal initial state), and
//! collect the sample set, "the best sample (e.g. the one with the lowest
//! QUBO cost function) selected as the final solution".
//!
//! Front-end behaviours modeled after the hardware stack:
//!
//! * **Auto-scaling** — the programmed Ising is normalized to the device's
//!   `[-1, 1]` coefficient range (does not change the argmin).
//! * **ICE noise** — each read perturbs the programmed coefficients
//!   ([`IceModel`]), while reported energies are evaluated on the *intended*
//!   problem, as the D-Wave stack does.
//! * **Parallel reads** — reads are independent, so they fan out across
//!   threads (std scoped threads); per-read RNG streams are derived
//!   from the seed, making results bit-identical regardless of thread count.
//! * **QPU time accounting** — programming / per-read anneal / readout
//!   charges, in *programmed microseconds*; the paper's TTS metric consumes
//!   the schedule duration.

use crate::dwave::DWaveProfile;
use crate::engine::{AnnealEngine, AnnealParams};
use crate::noise::IceModel;
use crate::pimc::PimcEngine;
use crate::schedule::AnnealSchedule;
use crate::svmc::SvmcEngine;
use hqw_math::parallel::parallel_map_indexed;
use hqw_math::Rng64;
use hqw_qubo::solution::{bits_to_spins, spins_to_bits};
use hqw_qubo::{Ising, Qubo, SampleSet};

/// Which simulation engine backs the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Path-integral quantum Monte Carlo with the given Trotter slices.
    Pimc {
        /// Number of Trotter slices (≥ 2).
        trotter_slices: usize,
    },
    /// Spin-vector (semi-classical) Monte Carlo.
    Svmc,
}

impl Default for EngineKind {
    fn default() -> Self {
        EngineKind::Pimc { trotter_slices: 16 }
    }
}

/// Sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Number of anneal reads per submission (`N_s`).
    pub num_reads: usize,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Time-discretization and temperature parameters.
    pub params: AnnealParams,
    /// Analog coefficient noise per read.
    pub ice: IceModel,
    /// Normalize programmed coefficients to `[-1, 1]` (device auto-scale).
    pub auto_scale: bool,
    /// Worker threads for parallel reads (0 = all available cores).
    pub threads: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            num_reads: 100,
            engine: EngineKind::default(),
            params: AnnealParams::default(),
            ice: IceModel::none(),
            auto_scale: true,
            threads: 0,
        }
    }
}

/// A [`SamplerConfig`] field that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_reads` was zero.
    ZeroReads,
    /// The PIMC engine was configured with fewer than two Trotter slices.
    TooFewTrotterSlices {
        /// The offending slice count.
        trotter_slices: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroReads => write!(f, "SamplerConfig: num_reads must be > 0"),
            ConfigError::TooFewTrotterSlices { trotter_slices } => write!(
                f,
                "SamplerConfig: need ≥ 2 Trotter slices, got {trotter_slices}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl SamplerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns the first violated constraint: zero reads or invalid engine
    /// parameters.
    ///
    /// # Panics
    /// Panics on invalid [`AnnealParams`] (those keep their own panicking
    /// validator).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_reads == 0 {
            return Err(ConfigError::ZeroReads);
        }
        self.params.validate();
        if let EngineKind::Pimc { trotter_slices } = self.engine {
            if trotter_slices < 2 {
                return Err(ConfigError::TooFewTrotterSlices { trotter_slices });
            }
        }
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    ///
    /// # Panics
    /// Panics with the [`ConfigError`] message on any invalid field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// QPU-time accounting for one submission (all values in microseconds).
///
/// Constants follow the 2000Q-era service: ~10 ms programming, ~120 µs
/// readout and ~20 µs inter-read delay per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpuTiming {
    /// One-time problem programming cost.
    pub programming_us: f64,
    /// Programmed anneal duration per read (the schedule's duration — what
    /// the paper's TTS charges).
    pub anneal_us_per_read: f64,
    /// Readout cost per read.
    pub readout_us_per_read: f64,
    /// Inter-read delay per read.
    pub delay_us_per_read: f64,
    /// Number of reads.
    pub num_reads: usize,
}

impl QpuTiming {
    fn new(schedule: &AnnealSchedule, num_reads: usize) -> Self {
        QpuTiming {
            programming_us: 10_000.0,
            anneal_us_per_read: schedule.duration_us(),
            readout_us_per_read: 123.0,
            delay_us_per_read: 21.0,
            num_reads,
        }
    }

    /// Pure sampling time: `reads × (anneal + readout + delay)`.
    pub fn sampling_us(&self) -> f64 {
        self.num_reads as f64
            * (self.anneal_us_per_read + self.readout_us_per_read + self.delay_us_per_read)
    }

    /// Full QPU access time including programming.
    pub fn qpu_access_us(&self) -> f64 {
        self.programming_us + self.sampling_us()
    }
}

/// One submission's output.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Aggregated samples with energies of the *intended* problem.
    pub samples: SampleSet,
    /// QPU time accounting.
    pub timing: QpuTiming,
}

/// The sampler: a device profile plus a configuration.
#[derive(Debug, Clone)]
pub struct QuantumSampler {
    /// Device energy scales and temperature.
    pub profile: DWaveProfile,
    /// Submission configuration.
    pub config: SamplerConfig,
}

impl QuantumSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(profile: DWaveProfile, config: SamplerConfig) -> Self {
        config.validate_or_panic();
        QuantumSampler { profile, config }
    }

    /// Sampler with the calibrated 2000Q-like profile (see
    /// [`DWaveProfile::calibrated`]) and default configuration.
    pub fn with_defaults() -> Self {
        QuantumSampler::new(DWaveProfile::calibrated(), SamplerConfig::default())
    }

    /// Samples a QUBO. `initial_bits` programs the reverse-anneal initial
    /// state and is required exactly when the schedule starts at `s = 1`.
    ///
    /// Reported energies are QUBO energies of the intended problem.
    ///
    /// # Panics
    /// Panics when a reverse schedule lacks an initial state or lengths
    /// mismatch.
    pub fn sample_qubo(
        &self,
        qubo: &Qubo,
        schedule: &AnnealSchedule,
        initial_bits: Option<&[u8]>,
        seed: u64,
    ) -> AnnealResult {
        let (ising, _offset) = qubo.to_ising();
        let initial_spins = initial_bits.map(bits_to_spins);
        let states = self.run_reads(&ising, schedule, initial_spins.as_deref(), seed);
        let samples = SampleSet::from_reads(states.into_iter().map(|spins| {
            let bits = spins_to_bits(&spins);
            let energy = qubo.energy(&bits);
            (bits, energy)
        }));
        AnnealResult {
            samples,
            timing: QpuTiming::new(schedule, self.config.num_reads),
        }
    }

    /// Samples an Ising problem directly; energies are Ising energies of the
    /// intended problem (bits are the usual `q = (s+1)/2` view).
    ///
    /// # Panics
    /// As [`QuantumSampler::sample_qubo`].
    pub fn sample_ising(
        &self,
        ising: &Ising,
        schedule: &AnnealSchedule,
        initial: Option<&[i8]>,
        seed: u64,
    ) -> AnnealResult {
        let states = self.run_reads(ising, schedule, initial, seed);
        let samples = SampleSet::from_reads(states.into_iter().map(|spins| {
            let energy = ising.energy(&spins);
            (spins_to_bits(&spins), energy)
        }));
        AnnealResult {
            samples,
            timing: QpuTiming::new(schedule, self.config.num_reads),
        }
    }

    /// Samples a QUBO **through a Chimera minor-embedding** — the full
    /// hardware compilation path: embed the logical Ising onto the hardware
    /// graph with chains, anneal the physical problem, unembed each read by
    /// majority vote, and report energies of the intended logical QUBO.
    ///
    /// Reverse-anneal initial states are expanded to chain-consistent
    /// physical states (unused qubits randomized).
    ///
    /// Returns the result plus the fraction of broken chains across all
    /// reads (`broken chains / (reads × logical variables)`).
    ///
    /// # Panics
    /// Panics when the embedding size mismatches the QUBO, or on the usual
    /// reverse-schedule initial-state requirements.
    pub fn sample_qubo_embedded(
        &self,
        qubo: &Qubo,
        embedding: &crate::embedding::CliqueEmbedding,
        strength: crate::embedding::ChainStrength,
        schedule: &AnnealSchedule,
        initial_bits: Option<&[u8]>,
        seed: u64,
    ) -> (AnnealResult, f64) {
        assert_eq!(
            embedding.num_logical(),
            qubo.num_vars(),
            "sample_qubo_embedded: embedding size mismatch"
        );
        let (logical, _offset) = qubo.to_ising();
        let physical = embedding.embed(&logical, strength);

        // Expand the reverse-anneal initial state through the chains.
        let mut init_rng = Rng64::new(seed ^ 0xE1BE_DDED);
        let physical_init = initial_bits.map(|bits| {
            let spins = bits_to_spins(bits);
            embedding.embed_state(&spins, &mut init_rng)
        });

        let states = self.run_reads(&physical, schedule, physical_init.as_deref(), seed);
        let mut broken_total = 0usize;
        let reads = states.len();
        let samples = SampleSet::from_reads(states.into_iter().map(|phys| {
            let (logical_spins, broken) = embedding.unembed(&phys);
            broken_total += broken;
            let bits = spins_to_bits(&logical_spins);
            let energy = qubo.energy(&bits);
            (bits, energy)
        }));
        let chain_break_fraction =
            broken_total as f64 / (reads * embedding.num_logical()).max(1) as f64;
        (
            AnnealResult {
                samples,
                timing: QpuTiming::new(schedule, self.config.num_reads),
            },
            chain_break_fraction,
        )
    }

    /// Runs the configured number of reads, in parallel, deterministically.
    fn run_reads(
        &self,
        intended: &Ising,
        schedule: &AnnealSchedule,
        initial: Option<&[i8]>,
        seed: u64,
    ) -> Vec<Vec<i8>> {
        self.config.validate_or_panic();
        // Program the device: auto-scale the intended problem.
        let mut programmed = intended.clone();
        if self.config.auto_scale {
            programmed.normalize();
        }

        // Per-read RNG seeds from the master seed: thread-count invariant.
        let mut master = Rng64::new(seed);
        let read_seeds: Vec<u64> = (0..self.config.num_reads)
            .map(|_| master.next_u64())
            .collect();

        parallel_map_indexed(&read_seeds, self.config.threads, |_, &read_seed| {
            let mut rng = Rng64::new(read_seed);
            let engine: Box<dyn AnnealEngine> = match self.config.engine {
                EngineKind::Pimc { trotter_slices } => Box::new(PimcEngine::new(trotter_slices)),
                EngineKind::Svmc => Box::new(SvmcEngine),
            };
            let problem = if self.config.ice.is_none() {
                programmed.clone()
            } else {
                self.config.ice.perturb(&programmed, &mut rng)
            };
            engine.run(
                &problem,
                &self.profile,
                schedule,
                &self.config.params,
                initial,
                &mut rng,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreezeOut;
    use hqw_qubo::exact::exhaustive_minimum;
    use hqw_qubo::generator::random_qubo;

    fn quick_config(reads: usize) -> SamplerConfig {
        SamplerConfig {
            num_reads: reads,
            engine: EngineKind::Pimc { trotter_slices: 8 },
            params: AnnealParams {
                sweeps_per_us: 24,
                beta_override: None,
                freeze_out: Some(FreezeOut::default()),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn forward_sampling_finds_small_optima() {
        let mut rng = Rng64::new(41);
        let q = random_qubo(8, &mut rng);
        let (_, e_best) = exhaustive_minimum(&q);
        let sampler = QuantumSampler::new(DWaveProfile::default(), quick_config(60));
        let schedule = AnnealSchedule::forward(2.0).unwrap();
        let out = sampler.sample_qubo(&q, &schedule, None, 7);
        assert_eq!(out.samples.total_reads(), 60);
        assert!(
            (out.samples.best_energy() - e_best).abs() < 1e-9,
            "FA sampling missed an 8-var optimum: {} vs {e_best}",
            out.samples.best_energy()
        );
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let mut rng = Rng64::new(43);
        let q = random_qubo(6, &mut rng);
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let mut one = quick_config(16);
        one.threads = 1;
        let mut many = quick_config(16);
        many.threads = 4;
        let a =
            QuantumSampler::new(DWaveProfile::default(), one).sample_qubo(&q, &schedule, None, 9);
        let b =
            QuantumSampler::new(DWaveProfile::default(), many).sample_qubo(&q, &schedule, None, 9);
        let av: Vec<_> = a
            .samples
            .iter()
            .map(|s| (s.bits.clone(), s.occurrences))
            .collect();
        let bv: Vec<_> = b
            .samples
            .iter()
            .map(|s| (s.bits.clone(), s.occurrences))
            .collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn reverse_requires_initial_state() {
        let mut rng = Rng64::new(45);
        let q = random_qubo(4, &mut rng);
        let schedule = AnnealSchedule::reverse(0.5, 1.0).unwrap();
        let sampler = QuantumSampler::new(DWaveProfile::default(), quick_config(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sampler.sample_qubo(&q, &schedule, None, 1)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn reverse_with_initial_state_runs() {
        let mut rng = Rng64::new(47);
        let q = random_qubo(6, &mut rng);
        let schedule = AnnealSchedule::reverse(0.4, 1.0).unwrap();
        let sampler = QuantumSampler::new(DWaveProfile::default(), quick_config(8));
        let init = vec![0u8, 1, 0, 1, 0, 1];
        let out = sampler.sample_qubo(&q, &schedule, Some(&init), 3);
        assert_eq!(out.samples.total_reads(), 8);
    }

    #[test]
    fn ice_noise_changes_samples_not_reported_energies() {
        let mut rng = Rng64::new(49);
        let q = random_qubo(8, &mut rng);
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let mut noisy_cfg = quick_config(20);
        noisy_cfg.ice = IceModel::new(0.2, 0.2);
        let sampler = QuantumSampler::new(DWaveProfile::default(), noisy_cfg);
        let out = sampler.sample_qubo(&q, &schedule, None, 5);
        // Reported energies must be consistent with the intended problem.
        for s in out.samples.iter() {
            assert!((q.energy(&s.bits) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn timing_charges_schedule_duration() {
        let mut rng = Rng64::new(51);
        let q = random_qubo(4, &mut rng);
        let schedule = AnnealSchedule::reverse(0.4, 1.0).unwrap(); // duration 2.2
        let sampler = QuantumSampler::new(DWaveProfile::default(), quick_config(10));
        let out = sampler.sample_qubo(&q, &schedule, Some(&[0, 0, 1, 1]), 2);
        assert!((out.timing.anneal_us_per_read - 2.2).abs() < 1e-9);
        assert_eq!(out.timing.num_reads, 10);
        assert!(out.timing.qpu_access_us() > out.timing.sampling_us());
    }

    #[test]
    fn validate_accepts_defaults_and_reports_violations() {
        assert_eq!(SamplerConfig::default().validate(), Ok(()));

        let zero_reads = SamplerConfig {
            num_reads: 0,
            ..Default::default()
        };
        assert_eq!(zero_reads.validate(), Err(ConfigError::ZeroReads));

        let one_slice = SamplerConfig {
            engine: EngineKind::Pimc { trotter_slices: 1 },
            ..Default::default()
        };
        assert_eq!(
            one_slice.validate(),
            Err(ConfigError::TooFewTrotterSlices { trotter_slices: 1 })
        );
        assert!(one_slice
            .validate()
            .unwrap_err()
            .to_string()
            .contains("Trotter"));
    }

    #[test]
    fn validate_or_panic_passes_valid_configs() {
        SamplerConfig::default().validate_or_panic();
    }

    #[test]
    #[should_panic(expected = "num_reads must be > 0")]
    fn validate_or_panic_keeps_the_panicking_contract() {
        let config = SamplerConfig {
            num_reads: 0,
            ..Default::default()
        };
        config.validate_or_panic();
    }

    #[test]
    fn svmc_engine_is_selectable() {
        let mut rng = Rng64::new(53);
        let q = random_qubo(6, &mut rng);
        let mut cfg = quick_config(10);
        cfg.engine = EngineKind::Svmc;
        let sampler = QuantumSampler::new(DWaveProfile::default(), cfg);
        let out = sampler.sample_qubo(&q, &AnnealSchedule::forward(1.0).unwrap(), None, 11);
        assert_eq!(out.samples.total_reads(), 10);
    }
}

#[cfg(test)]
mod embedded_tests {
    use super::*;
    use crate::embedding::{ChainStrength, CliqueEmbedding};
    use crate::engine::FreezeOut;
    use crate::topology::Chimera;
    use hqw_qubo::generator::random_qubo;

    fn quick_sampler(reads: usize) -> QuantumSampler {
        QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: reads,
                engine: EngineKind::Pimc { trotter_slices: 4 },
                params: AnnealParams {
                    sweeps_per_us: 16,
                    beta_override: None,
                    freeze_out: Some(FreezeOut::default()),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn embedded_sampling_reports_logical_energies() {
        let mut rng = Rng64::new(61);
        let q = random_qubo(4, &mut rng);
        let embedding = CliqueEmbedding::new(Chimera::new(1), 4);
        let sampler = quick_sampler(10);
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let (result, breaks) = sampler.sample_qubo_embedded(
            &q,
            &embedding,
            ChainStrength::RelativeToMax(2.0),
            &schedule,
            None,
            5,
        );
        assert_eq!(result.samples.total_reads(), 10);
        assert!((0.0..=1.0).contains(&breaks));
        for s in result.samples.iter() {
            assert_eq!(s.bits.len(), 4);
            assert!((q.energy(&s.bits) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn embedded_reverse_holds_strong_seed() {
        // Reverse anneal at very high s_p through the embedding: the
        // programmed logical state must survive chains + unembedding.
        let mut rng = Rng64::new(67);
        let q = random_qubo(4, &mut rng);
        let embedding = CliqueEmbedding::new(Chimera::new(1), 4);
        let sampler = quick_sampler(8);
        let schedule = AnnealSchedule::reverse(0.97, 0.1).unwrap();
        let init = vec![1u8, 0, 1, 0];
        let (result, _breaks) = sampler.sample_qubo_embedded(
            &q,
            &embedding,
            ChainStrength::RelativeToMax(4.0),
            &schedule,
            Some(&init),
            7,
        );
        let preserved: u64 = result
            .samples
            .iter()
            .filter(|s| s.bits == init)
            .map(|s| s.occurrences)
            .sum();
        assert!(
            preserved >= 6,
            "embedded shallow RA should mostly preserve the seed ({preserved}/8)"
        );
    }

    #[test]
    #[should_panic(expected = "embedding size mismatch")]
    fn embedded_sampling_rejects_size_mismatch() {
        let mut rng = Rng64::new(71);
        let q = random_qubo(5, &mut rng);
        let embedding = CliqueEmbedding::new(Chimera::new(1), 4);
        quick_sampler(2).sample_qubo_embedded(
            &q,
            &embedding,
            ChainStrength::Fixed(1.0),
            &AnnealSchedule::forward(1.0).unwrap(),
            None,
            1,
        );
    }
}
