//! Anneal schedules: piecewise-linear `s(t)` waveforms.
//!
//! The annealing parameter `s ∈ [0, 1]` sets the inverse strength of quantum
//! fluctuations (the paper's Figure 5): at `s = 0` the annealer is a fully
//! quantum, effectively random register; at `s = 1` quantum fluctuations are
//! suppressed and the machine is a classical memory holding a result.
//!
//! A schedule is a list of `[time µs, s]` waypoints — exactly the D-Wave
//! programming interface the paper's prototype used. The three constructors
//! implement §4.1's protocols verbatim:
//!
//! * **Forward (FA):** `[0,0] →F [s_p, s_p] →P [s_p+t_p, s_p] →F [t_a+t_p, 1]`
//! * **Reverse (RA):** `[0,1] →R [1−s_p, s_p] →P [1−s_p+t_p, s_p] →F [2(1−s_p)+t_p, 1]`
//! * **Forward-Reverse (FR):** `[0,0] →F [c_p,c_p] →R [2c_p−s_p, s_p] →P
//!   [2c_p−s_p+t_p, s_p] →F [2c_p−2s_p+t_p+t_a, 1]`
//!
//! plus a plain forward ramp for baselines. RA starts at `s = 1` from a
//! *programmed classical state* — the property that enables the paper's
//! hybrid design.

/// A piecewise-linear anneal schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealSchedule {
    /// `(time µs, s)` waypoints; time strictly increasing, `s ∈ [0, 1]`.
    points: Vec<(f64, f64)>,
}

/// Errors from schedule construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Fewer than two waypoints.
    TooFewPoints,
    /// A waypoint time is not strictly after its predecessor.
    NonMonotonicTime {
        /// Index of the offending waypoint.
        index: usize,
    },
    /// An `s` value is outside `[0, 1]`.
    SOutOfRange {
        /// Index of the offending waypoint.
        index: usize,
        /// The offending value.
        s: f64,
    },
    /// The first waypoint is not at `t = 0`.
    NonZeroStart,
    /// A protocol parameter is out of its valid range.
    BadParameter {
        /// Human-readable description.
        what: &'static str,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::TooFewPoints => write!(f, "schedule needs at least two waypoints"),
            ScheduleError::NonMonotonicTime { index } => {
                write!(f, "waypoint {index} does not advance time")
            }
            ScheduleError::SOutOfRange { index, s } => {
                write!(f, "waypoint {index} has s = {s} outside [0, 1]")
            }
            ScheduleError::NonZeroStart => write!(f, "schedule must start at t = 0"),
            ScheduleError::BadParameter { what } => write!(f, "bad parameter: {what}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl AnnealSchedule {
    /// Builds a schedule from raw waypoints, validating the invariants.
    ///
    /// # Errors
    /// See [`ScheduleError`].
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self, ScheduleError> {
        if points.len() < 2 {
            return Err(ScheduleError::TooFewPoints);
        }
        if points[0].0 != 0.0 {
            return Err(ScheduleError::NonZeroStart);
        }
        for (i, &(t, s)) in points.iter().enumerate() {
            if !(0.0..=1.0).contains(&s) || !s.is_finite() {
                return Err(ScheduleError::SOutOfRange { index: i, s });
            }
            if i > 0 && (t <= points[i - 1].0 || !t.is_finite()) {
                return Err(ScheduleError::NonMonotonicTime { index: i });
            }
        }
        Ok(AnnealSchedule { points })
    }

    /// Plain forward ramp `[0,0] → [t_a, 1]` (no pause) — the baseline FA
    /// the paper runs at the hardware-minimum `t_a = 1 µs`.
    ///
    /// # Errors
    /// `t_a` must be positive.
    pub fn forward(t_a: f64) -> Result<Self, ScheduleError> {
        if t_a <= 0.0 {
            return Err(ScheduleError::BadParameter {
                what: "t_a must be > 0",
            });
        }
        Self::from_points(vec![(0.0, 0.0), (t_a, 1.0)])
    }

    /// §4.1 Forward Annealing with a mid-anneal pause at `s_p` for `t_p` µs:
    /// `[0,0] → [s_p,s_p] → [s_p+t_p,s_p] → [t_a+t_p, 1]`.
    ///
    /// The pre-pause ramp runs at unit rate (`s_p` reached at `t = s_p` µs),
    /// so `t_a > s_p` is required for the post-pause ramp to move forward.
    ///
    /// # Errors
    /// `0 < s_p < 1`, `t_p ≥ 0`, `t_a > s_p`.
    pub fn forward_with_pause(s_p: f64, t_p: f64, t_a: f64) -> Result<Self, ScheduleError> {
        if !(0.0 < s_p && s_p < 1.0) {
            return Err(ScheduleError::BadParameter {
                what: "s_p must be in (0, 1)",
            });
        }
        if t_p < 0.0 {
            return Err(ScheduleError::BadParameter {
                what: "t_p must be ≥ 0",
            });
        }
        if t_a <= s_p {
            return Err(ScheduleError::BadParameter {
                what: "t_a must exceed s_p",
            });
        }
        let mut pts = vec![(0.0, 0.0), (s_p, s_p)];
        if t_p > 0.0 {
            pts.push((s_p + t_p, s_p));
        }
        pts.push((t_a + t_p, 1.0));
        Self::from_points(pts)
    }

    /// §4.1 Reverse Annealing: start at `s = 1` (a programmed classical
    /// state), anneal backward to `s_p`, pause `t_p` µs, anneal forward:
    /// `[0,1] → [1−s_p, s_p] → [1−s_p+t_p, s_p] → [2(1−s_p)+t_p, 1]`.
    ///
    /// # Errors
    /// `0 < s_p < 1`, `t_p ≥ 0`.
    pub fn reverse(s_p: f64, t_p: f64) -> Result<Self, ScheduleError> {
        if !(0.0 < s_p && s_p < 1.0) {
            return Err(ScheduleError::BadParameter {
                what: "s_p must be in (0, 1)",
            });
        }
        if t_p < 0.0 {
            return Err(ScheduleError::BadParameter {
                what: "t_p must be ≥ 0",
            });
        }
        let back = 1.0 - s_p;
        let mut pts = vec![(0.0, 1.0), (back, s_p)];
        if t_p > 0.0 {
            pts.push((back + t_p, s_p));
        }
        pts.push((2.0 * back + t_p, 1.0));
        Self::from_points(pts)
    }

    /// §4.1 Forward-Reverse Annealing (FR): forward to `c_p`, reverse to
    /// `s_p` *without measurement*, pause, forward:
    /// `[0,0] → [c_p,c_p] → [2c_p−s_p, s_p] → [2c_p−s_p+t_p, s_p] →
    /// [2c_p−2s_p+t_p+t_a, 1]`.
    ///
    /// # Errors
    /// `0 < s_p < c_p < 1`, `t_p ≥ 0`, `t_a > s_p`.
    pub fn forward_reverse(c_p: f64, s_p: f64, t_p: f64, t_a: f64) -> Result<Self, ScheduleError> {
        if !(0.0 < s_p && s_p < 1.0) {
            return Err(ScheduleError::BadParameter {
                what: "s_p must be in (0, 1)",
            });
        }
        if !(s_p < c_p && c_p < 1.0) {
            return Err(ScheduleError::BadParameter {
                what: "c_p must be in (s_p, 1)",
            });
        }
        if t_p < 0.0 {
            return Err(ScheduleError::BadParameter {
                what: "t_p must be ≥ 0",
            });
        }
        if t_a <= s_p {
            return Err(ScheduleError::BadParameter {
                what: "t_a must exceed s_p",
            });
        }
        let mut pts = vec![(0.0, 0.0), (c_p, c_p), (2.0 * c_p - s_p, s_p)];
        if t_p > 0.0 {
            pts.push((2.0 * c_p - s_p + t_p, s_p));
        }
        pts.push((2.0 * c_p - 2.0 * s_p + t_p + t_a, 1.0));
        Self::from_points(pts)
    }

    /// The waypoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Total programmed duration in µs — the quantity the paper's TTS
    /// metric charges per read ("RA total duration depends on switch and
    /// pause location s_p").
    pub fn duration_us(&self) -> f64 {
        self.points.last().expect("validated: non-empty").0
    }

    /// `s` at time `t` (linear interpolation; clamped at the ends).
    pub fn s_at(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.points[0].1;
        }
        for w in self.points.windows(2) {
            let (t0, s0) = w[0];
            let (t1, s1) = w[1];
            if t <= t1 {
                let frac = (t - t0) / (t1 - t0);
                return s0 + frac * (s1 - s0);
            }
        }
        self.points.last().expect("validated: non-empty").1
    }

    /// `s` at the start of the schedule.
    pub fn initial_s(&self) -> f64 {
        self.points[0].1
    }

    /// True when the schedule begins at `s = 1` and therefore requires a
    /// programmed initial state (reverse annealing).
    pub fn requires_initial_state(&self) -> bool {
        self.initial_s() >= 1.0
    }

    /// Minimum `s` reached anywhere in the schedule (how deep quantum
    /// fluctuations get re-opened).
    pub fn min_s(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fa_waypoints_match_paper_formula() {
        // t_a = 1, t_p = 1, s_p = 0.4:
        // [0,0] → [0.4,0.4] → [1.4,0.4] → [2.0,1.0]
        let s = AnnealSchedule::forward_with_pause(0.4, 1.0, 1.0).unwrap();
        assert_eq!(
            s.points(),
            &[(0.0, 0.0), (0.4, 0.4), (1.4, 0.4), (2.0, 1.0)]
        );
        assert!((s.duration_us() - 2.0).abs() < 1e-12);
        assert!(!s.requires_initial_state());
    }

    #[test]
    fn ra_waypoints_match_paper_formula() {
        // s_p = 0.4, t_p = 1: [0,1] → [0.6,0.4] → [1.6,0.4] → [2.2,1.0]
        let s = AnnealSchedule::reverse(0.4, 1.0).unwrap();
        let expected = [(0.0, 1.0), (0.6, 0.4), (1.6, 0.4), (2.2, 1.0)];
        for (a, b) in s.points().iter().zip(expected.iter()) {
            assert!((a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12);
        }
        assert!(s.requires_initial_state());
        // Duration: 2(1−s_p)+t_p.
        assert!((s.duration_us() - (2.0 * 0.6 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn ra_duration_depends_on_sp() {
        // The paper: "RA total duration depends on switch and pause location".
        let shallow = AnnealSchedule::reverse(0.9, 1.0).unwrap();
        let deep = AnnealSchedule::reverse(0.3, 1.0).unwrap();
        assert!(deep.duration_us() > shallow.duration_us());
    }

    #[test]
    fn fr_waypoints_match_paper_formula() {
        // c_p = 0.7, s_p = 0.4, t_p = 1, t_a = 1:
        // [0,0] → [0.7,0.7] → [1.0,0.4] → [2.0,0.4] → [3.0 − ... ]
        // 2c_p−2s_p+t_p+t_a = 1.4−0.8+2 = 2.6
        let s = AnnealSchedule::forward_reverse(0.7, 0.4, 1.0, 1.0).unwrap();
        let expected = [(0.0, 0.0), (0.7, 0.7), (1.0, 0.4), (2.0, 0.4), (2.6, 1.0)];
        for (a, b) in s.points().iter().zip(expected.iter()) {
            assert!(
                (a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12,
                "{:?} vs {:?}",
                a,
                b
            );
        }
        assert!(!s.requires_initial_state());
        // FR starts at s = 0, so min_s is 0; the *pause* sits at s_p.
        assert_eq!(s.min_s(), 0.0);
        assert!((s.s_at(1.5) - 0.4).abs() < 1e-12, "pause should hold s_p");
    }

    #[test]
    fn interpolation_is_linear_within_segments() {
        let s = AnnealSchedule::forward(2.0).unwrap();
        assert!((s.s_at(0.0) - 0.0).abs() < 1e-12);
        assert!((s.s_at(1.0) - 0.5).abs() < 1e-12);
        assert!((s.s_at(2.0) - 1.0).abs() < 1e-12);
        // Clamping outside the range.
        assert!((s.s_at(-1.0) - 0.0).abs() < 1e-12);
        assert!((s.s_at(99.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pause_holds_s_constant() {
        let s = AnnealSchedule::reverse(0.4, 2.0).unwrap();
        // Pause spans t ∈ [0.6, 2.6].
        for t in [0.7, 1.0, 2.0, 2.5] {
            assert!((s.s_at(t) - 0.4).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn zero_pause_omits_the_plateau() {
        let s = AnnealSchedule::reverse(0.5, 0.0).unwrap();
        assert_eq!(s.points().len(), 3);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(AnnealSchedule::forward(0.0).is_err());
        assert!(AnnealSchedule::reverse(0.0, 1.0).is_err());
        assert!(AnnealSchedule::reverse(1.0, 1.0).is_err());
        assert!(AnnealSchedule::reverse(0.5, -1.0).is_err());
        assert!(AnnealSchedule::forward_with_pause(0.5, 1.0, 0.4).is_err()); // t_a ≤ s_p
        assert!(AnnealSchedule::forward_reverse(0.3, 0.4, 1.0, 1.0).is_err()); // c_p < s_p
        assert!(AnnealSchedule::from_points(vec![(0.0, 0.0)]).is_err());
        assert!(AnnealSchedule::from_points(vec![(0.5, 0.0), (1.0, 1.0)]).is_err());
        assert!(AnnealSchedule::from_points(vec![(0.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(AnnealSchedule::from_points(vec![(0.0, 1.5), (1.0, 1.0)]).is_err());
    }

    #[test]
    fn paper_grid_is_constructible() {
        // §4.2: s_p and c_p range over 0.25–0.99 in steps of 0.04.
        let mut sp = 0.25;
        while sp <= 0.99 {
            AnnealSchedule::reverse(sp, 1.0).unwrap();
            AnnealSchedule::forward_with_pause(sp, 1.0, sp + 1.0).unwrap();
            sp += 0.04;
        }
    }
}
