//! Memoized clique embeddings for streaming / multi-tenant workloads.
//!
//! Deriving a [`CliqueEmbedding`] walks the whole Chimera cross
//! construction — cheap once, wasteful when a shared QPU front end serves
//! thousands of same-shape detection QUBOs per second (every MIMO frame of
//! a given (users, modulation) cell produces a QUBO of identical size).
//! [`EmbeddingCache`] memoizes embeddings by `(topology size m, n_logical)`:
//! the first request for a shape derives and stores the embedding, later
//! requests are an `Rc` clone.
//!
//! The construction in [`CliqueEmbedding::new`] is deterministic, so a
//! cached embedding is **identical** to a freshly derived one (chains, chain
//! edges and cross couplers — property-tested in `tests/proptests.rs`);
//! caching can never change results, only skip the derivation cost. Hit and
//! miss counters are exposed so cost models can charge the derivation
//! exactly once per shape, the amortization the fabric scheduler's batch
//! formation is designed around.

use crate::embedding::CliqueEmbedding;
use crate::topology::Chimera;
use std::collections::HashMap;
use std::rc::Rc;

/// Cache key: Chimera size `m` and the logical problem size.
pub type EmbeddingKey = (usize, usize);

/// A memoizing store of clique embeddings, keyed by
/// `(topology m, n_logical)`.
///
/// Single-owner by design (no interior locking): the deterministic
/// simulations that use it are sequential per cell, and cross-cell fan-out
/// builds one cache per cell so hit/miss counters stay reproducible at any
/// thread count.
#[derive(Debug, Default)]
pub struct EmbeddingCache {
    entries: HashMap<EmbeddingKey, Rc<CliqueEmbedding>>,
    hits: u64,
    misses: u64,
}

impl EmbeddingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        EmbeddingCache::default()
    }

    /// Returns the embedding of `n_logical` variables on `C_m`, deriving and
    /// storing it on first request.
    ///
    /// # Panics
    /// As [`CliqueEmbedding::new`]: zero variables or `n_logical > 4m`.
    pub fn get(&mut self, graph: Chimera, n_logical: usize) -> Rc<CliqueEmbedding> {
        let key = (graph.m(), n_logical);
        if let Some(found) = self.entries.get(&key) {
            self.hits += 1;
            return Rc::clone(found);
        }
        self.misses += 1;
        let derived = Rc::new(CliqueEmbedding::new(graph, n_logical));
        self.entries.insert(key, Rc::clone(&derived));
        derived
    }

    /// Number of requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of requests that derived a fresh embedding.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct shapes currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no embeddings yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_request_misses_then_hits() {
        let mut cache = EmbeddingCache::new();
        assert!(cache.is_empty());
        let a = cache.get(Chimera::new(2), 8);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.get(Chimera::new(2), 8);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Rc::ptr_eq(&a, &b), "hit must return the stored embedding");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let mut cache = EmbeddingCache::new();
        let small = cache.get(Chimera::new(2), 4);
        let large = cache.get(Chimera::new(2), 8);
        let other_graph = cache.get(Chimera::new(3), 4);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(small.num_logical(), 4);
        assert_eq!(large.num_logical(), 8);
        // Same n on a bigger graph: longer chains, different entry.
        assert!(other_graph.chain(0).len() > small.chain(0).len());
    }

    #[test]
    fn cached_embedding_matches_fresh_derivation() {
        let mut cache = EmbeddingCache::new();
        let cached = cache.get(Chimera::new(3), 10);
        let _ = cache.get(Chimera::new(3), 10);
        let fresh = CliqueEmbedding::new(Chimera::new(3), 10);
        for l in 0..10 {
            assert_eq!(cached.chain(l), fresh.chain(l), "chain {l} differs");
        }
        assert_eq!(cached.qubits_used(), fresh.qubits_used());
    }
}
