//! Spin-vector Monte Carlo (SVMC) — the semi-classical annealer model.
//!
//! Each qubit is an O(2) rotor, a unit vector in the x-z plane at angle
//! `θ_i ∈ [0, π]` (θ = 0 ↦ spin +1, θ = π ↦ spin −1, θ = π/2 ↦ fully
//! "quantum" x-alignment). The classical energy mirrors the transverse-field
//! Hamiltonian with operators replaced by their expectation on product
//! states (Shin-Smith-Smolin-Vazirani):
//!
//! ```text
//!   E(θ) = −A(s)/2 Σ_i sin θ_i + B(s)/2 ( Σ_i h_i cos θ_i + Σ_{ij} J_ij cos θ_i cos θ_j )
//! ```
//!
//! Metropolis dynamics on the angles at the device temperature. SVMC
//! reproduces much of D-Wave's *incoherent* behaviour (thermal hopping over
//! mean-field barriers) while PIMC additionally captures imaginary-time
//! tunneling — the two together bound what the hardware does, which is why
//! the ablation bench runs both engines on the same workload.
//!
//! Reverse annealing initializes the rotors at the programmed classical
//! poles; readout is `sign(cos θ)`.

use crate::dwave::DWaveProfile;
use crate::engine::{resolve_initial, AnnealEngine, AnnealParams};
use crate::schedule::AnnealSchedule;
use hqw_math::fastmath::{exp_fast, sin_poly_half_pi};
use hqw_math::Rng64;
use hqw_qubo::{CsrIsing, Ising, SweepKernel};

/// Rebuild the cached mean fields from scratch every this many sweeps: the
/// incremental updates accumulate float rounding (cos values are not exactly
/// representable), and a periodic refresh bounds the drift without touching
/// the per-proposal O(1) cost.
const FIELD_REFRESH_SWEEPS: usize = 64;

/// Fast-kernel sweep skip: below this gate the expected accepted rotations
/// per sweep are ≪ 1 — statistically indistinguishable from frozen.
const FAST_GATE_SKIP: f64 = 1e-8;

/// Fast-kernel reject cutoff: uphill moves with `β·Δ − ln(gate)` above this
/// have acceptance below `e⁻³⁰` and are rejected without an RNG draw.
const FAST_REJECT_CUTOFF: f64 = 30.0;

/// Spin-vector Monte Carlo engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvmcEngine;

impl AnnealEngine for SvmcEngine {
    fn name(&self) -> &'static str {
        "SVMC"
    }

    fn run(
        &self,
        problem: &Ising,
        profile: &DWaveProfile,
        schedule: &AnnealSchedule,
        params: &AnnealParams,
        initial: Option<&[i8]>,
        rng: &mut Rng64,
    ) -> Vec<i8> {
        params.validate();
        let csr = CsrIsing::from_ising(problem);
        let n = csr.num_vars();
        if n == 0 {
            return Vec::new();
        }
        let init = resolve_initial(schedule, n, initial);
        match params.kernel {
            SweepKernel::Exact => run_exact(&csr, profile, schedule, params, init, rng),
            SweepKernel::Fast => run_fast(&csr, profile, schedule, params, init, rng),
        }
    }
}

/// Initial rotor angles for a schedule.
fn initial_theta(init: &Option<Vec<i8>>, n: usize) -> Vec<f64> {
    match init {
        Some(state) => state
            .iter()
            .map(|&s| if s > 0 { 0.0 } else { std::f64::consts::PI })
            .collect(),
        // Forward start: transverse field dominates ⇒ x-aligned rotors.
        None => vec![std::f64::consts::FRAC_PI_2; n],
    }
}

/// The bit-identical kernel: f64 fields, one acceptance draw per proposal.
/// The `sin θ` cache and the run-AXPY neighbor update replay the identical
/// float stream as the historical code (same inputs, same op order) — both
/// are golden-pinned.
fn run_exact(
    csr: &CsrIsing,
    profile: &DWaveProfile,
    schedule: &AnnealSchedule,
    params: &AnnealParams,
    init: Option<Vec<i8>>,
    rng: &mut Rng64,
) -> Vec<i8> {
    let n = csr.num_vars();
    let beta = params.beta(profile);

    // Rotor angles plus cached cos/sin (cosines enter neighbors' fields;
    // sines enter only the rotor's own transverse term).
    let theta: Vec<f64> = initial_theta(&init, n);
    let mut cos_t: Vec<f64> = theta.iter().map(|t| t.cos()).collect();
    let mut sin_t: Vec<f64> = theta.iter().map(|t| t.sin()).collect();
    drop(theta);

    // Incrementally-maintained mean fields in cos-space:
    // field[i] = h_i + Σ_j J_ij cos θ_j. A proposal reads its field in
    // O(1); only accepted rotations pay an O(degree) neighbor update.
    let rebuild = |cos_t: &[f64], field: &mut [f64]| {
        for (i, slot) in field.iter_mut().enumerate() {
            let (cols, ws) = csr.row(i);
            let mut f = csr.h(i);
            for (&j, &w) in cols.iter().zip(ws) {
                f += w * cos_t[j as usize];
            }
            *slot = f;
        }
    };
    let mut field: Vec<f64> = vec![0.0; n];
    rebuild(&cos_t, &mut field);

    let total_sweeps = params.total_sweeps(schedule);
    let duration = schedule.duration_us();

    for sweep in 0..total_sweeps {
        let t = (sweep as f64 + 0.5) * duration / total_sweeps as f64;
        let s = schedule.s_at(t);
        let a_half = profile.a_ghz(s) / 2.0;
        let b_half = profile.b_ghz(s) / 2.0;
        let gate = params.gate(profile.a_ghz(s));
        if gate <= 0.0 {
            continue; // fully frozen
        }
        if sweep > 0 && sweep % FIELD_REFRESH_SWEEPS == 0 {
            rebuild(&cos_t, &mut field);
        }

        for i in 0..n {
            // Propose a fresh angle uniformly in [0, π]; lazy-chain gate
            // scales the acceptance (freeze-out).
            let proposal = rng.next_range(0.0, std::f64::consts::PI);
            // cos/sin are deterministic on a given input, so computing them
            // once and reusing on accept is bit-identical to recomputing.
            let p_cos = proposal.cos();
            let p_sin = proposal.sin();
            let d_cos = p_cos - cos_t[i];
            let delta = b_half * field[i] * d_cos - a_half * (p_sin - sin_t[i]);
            let accept = if delta <= 0.0 {
                gate
            } else {
                gate * (-beta * delta).exp()
            };
            if rng.next_f64() < accept {
                cos_t[i] = p_cos;
                sin_t[i] = p_sin;
                csr.axpy_row(&mut field, i, d_cos);
            }
        }
    }

    cos_t
        .iter()
        .map(|&c| if c >= 0.0 { 1 } else { -1 })
        .collect()
}

/// The Fast kernel: f32 mean fields (periodically refreshed), draw-skipping
/// certain accepts and hopeless rejects, whole-sweep skips when the gate is
/// effectively closed. Statistically equivalent to [`run_exact`], not
/// bit-identical.
fn run_fast(
    csr: &CsrIsing,
    profile: &DWaveProfile,
    schedule: &AnnealSchedule,
    params: &AnnealParams,
    init: Option<Vec<i8>>,
    rng: &mut Rng64,
) -> Vec<i8> {
    let n = csr.num_vars();
    let beta = params.beta(profile);

    let theta: Vec<f64> = initial_theta(&init, n);
    let mut cos_t: Vec<f64> = theta.iter().map(|t| t.cos()).collect();
    let mut sin_t: Vec<f64> = theta.iter().map(|t| t.sin()).collect();
    drop(theta);

    let rebuild = |cos_t: &[f64], field: &mut [f32]| {
        for (i, slot) in field.iter_mut().enumerate() {
            let (cols, w32) = csr.row_f32(i);
            let mut f = csr.h(i) as f32;
            for (&j, &w) in cols.iter().zip(w32) {
                f += w * cos_t[j as usize] as f32;
            }
            *slot = f;
        }
    };
    let mut field: Vec<f32> = vec![0.0; n];
    rebuild(&cos_t, &mut field);

    let total_sweeps = params.total_sweeps(schedule);
    let duration = schedule.duration_us();

    for sweep in 0..total_sweeps {
        let t = (sweep as f64 + 0.5) * duration / total_sweeps as f64;
        let s = schedule.s_at(t);
        let a_half = profile.a_ghz(s) / 2.0;
        let b_half = profile.b_ghz(s) / 2.0;
        let gate = params.gate(profile.a_ghz(s));
        if gate < FAST_GATE_SKIP {
            continue; // expected accepted rotations per sweep ≪ 1
        }
        let neg_ln_gate = -gate.ln(); // ≥ 0; 0 when the gate is open
        let certain = gate >= 1.0;
        if sweep > 0 && sweep % FIELD_REFRESH_SWEEPS == 0 {
            rebuild(&cos_t, &mut field);
        }

        for i in 0..n {
            // Same uniform [0, π] proposal as Exact (one RNG draw), but the
            // trig goes through `sin_poly` on the shifted angle:
            // cos θ = −sin(θ − π/2), and sin θ = √(1 − cos²θ) is exact for
            // θ ∈ [0, π] where sin is non-negative.
            let proposal = rng.next_range(0.0, std::f64::consts::PI);
            let x = proposal - std::f64::consts::FRAC_PI_2;
            let p_cos = -sin_poly_half_pi(x);
            let p_sin = (1.0 - p_cos * p_cos).max(0.0).sqrt();
            let d_cos = p_cos - cos_t[i];
            let delta = b_half * field[i] as f64 * d_cos - a_half * (p_sin - sin_t[i]);
            let accept = if delta <= 0.0 {
                certain || rng.next_f64() < gate
            } else if beta * delta + neg_ln_gate > FAST_REJECT_CUTOFF {
                false // acceptance < e⁻³⁰: no draw needed
            } else {
                rng.next_f64() < gate * exp_fast(-beta * delta)
            };
            if accept {
                cos_t[i] = p_cos;
                sin_t[i] = p_sin;
                csr.axpy_row_f32(&mut field, i, d_cos as f32);
            }
        }
    }

    cos_t
        .iter()
        .map(|&c| if c >= 0.0 { 1 } else { -1 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreezeOut;
    use hqw_qubo::solution::bits_to_spins;

    fn ferromagnet(n: usize) -> Ising {
        let mut ising = Ising::new(n);
        for i in 0..n {
            ising.set_h(i, -0.4);
            if i + 1 < n {
                ising.set_coupling(i, i + 1, -1.0);
            }
        }
        ising
    }

    #[test]
    fn forward_anneal_finds_ferromagnetic_ground_state() {
        let ising = ferromagnet(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(2.0).unwrap();
        let params = AnnealParams {
            sweeps_per_us: 64,
            beta_override: None,
            freeze_out: Some(FreezeOut::default()),
            ..Default::default()
        };
        let mut rng = Rng64::new(21);
        let mut hits = 0;
        for _ in 0..10 {
            let out = SvmcEngine.run(&ising, &profile, &schedule, &params, None, &mut rng);
            if out.iter().all(|&s| s == 1) {
                hits += 1;
            }
        }
        assert!(hits >= 8, "SVMC FA found the ferromagnet {hits}/10 times");
    }

    #[test]
    fn shallow_reverse_preserves_initial_state() {
        // All-down is a local (not global) minimum of the field-pinned-up
        // ferromagnet; shallow RA must not escape it.
        let ising = ferromagnet(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.95, 0.2).unwrap();
        let params = AnnealParams::default();
        let init = bits_to_spins(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = Rng64::new(23);
        let mut preserved = 0;
        for _ in 0..10 {
            let out = SvmcEngine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out == init {
                preserved += 1;
            }
        }
        assert!(preserved >= 8, "shallow SVMC RA preserved {preserved}/10");
    }

    #[test]
    fn deep_reverse_escapes_excited_state() {
        let ising = ferromagnet(6);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.05, 1.0).unwrap();
        let params = AnnealParams {
            sweeps_per_us: 64,
            beta_override: None,
            freeze_out: Some(FreezeOut::default()),
            ..Default::default()
        };
        let init = vec![-1i8; 6];
        let mut rng = Rng64::new(27);
        let mut recovered = 0;
        for _ in 0..10 {
            let out = SvmcEngine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out.iter().all(|&s| s == 1) {
                recovered += 1;
            }
        }
        assert!(recovered >= 7, "deep SVMC RA recovered {recovered}/10");
    }

    #[test]
    fn deterministic_per_seed() {
        let ising = ferromagnet(5);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let params = AnnealParams::default();
        let a = SvmcEngine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(31),
        );
        let b = SvmcEngine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(31),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fast_kernel_finds_ferromagnetic_ground_state() {
        let ising = ferromagnet(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(2.0).unwrap();
        let params = AnnealParams {
            sweeps_per_us: 64,
            kernel: SweepKernel::Fast,
            ..Default::default()
        };
        let mut rng = Rng64::new(61);
        let mut hits = 0;
        for _ in 0..10 {
            let out = SvmcEngine.run(&ising, &profile, &schedule, &params, None, &mut rng);
            if out.iter().all(|&s| s == 1) {
                hits += 1;
            }
        }
        assert!(hits >= 8, "Fast SVMC FA found the ferromagnet {hits}/10");
    }

    #[test]
    fn fast_kernel_preserves_shallow_reverse_anneal() {
        let ising = ferromagnet(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.95, 0.2).unwrap();
        let params = AnnealParams {
            kernel: SweepKernel::Fast,
            ..Default::default()
        };
        let init = bits_to_spins(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = Rng64::new(67);
        let mut preserved = 0;
        for _ in 0..10 {
            let out = SvmcEngine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out == init {
                preserved += 1;
            }
        }
        assert!(
            preserved >= 8,
            "Fast shallow SVMC RA preserved {preserved}/10"
        );
    }

    #[test]
    fn fast_kernel_is_deterministic_per_seed() {
        let ising = ferromagnet(5);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let params = AnnealParams {
            kernel: SweepKernel::Fast,
            ..Default::default()
        };
        let a = SvmcEngine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(71),
        );
        let b = SvmcEngine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(71),
        );
        assert_eq!(a, b);
    }
}
