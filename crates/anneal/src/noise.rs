//! Analog control noise (ICE — integrated control errors).
//!
//! Analog annealers do not program `h` and `J` exactly: each read sees the
//! intended coefficients perturbed by roughly-Gaussian errors. This is the
//! hardware reality behind the paper's §3.1 finding that soft-information
//! constraint factors are "difficult to find … on noisy, analog quantum
//! machines": a constraint strength that is safe on the nominal problem can
//! displace the global optimum once coefficients jitter.
//!
//! Magnitudes default to the 2000Q-era scale (a few percent of the
//! unit-normalized programming range).

use hqw_math::Rng64;
use hqw_qubo::Ising;

/// Gaussian perturbation model for programmed coefficients.
#[derive(Debug, Clone, Copy)]
pub struct IceModel {
    /// Standard deviation of the per-read error on each `h_i`.
    pub sigma_h: f64,
    /// Standard deviation of the per-read error on each `J_ij`.
    pub sigma_j: f64,
}

impl Default for IceModel {
    fn default() -> Self {
        // 2000Q-era public figures: δh ≈ 0.03, δJ ≈ 0.02 on the [-1, 1]
        // programming range.
        IceModel {
            sigma_h: 0.03,
            sigma_j: 0.02,
        }
    }
}

impl IceModel {
    /// A noiseless model (useful to switch ICE off through the same API).
    pub fn none() -> Self {
        IceModel {
            sigma_h: 0.0,
            sigma_j: 0.0,
        }
    }

    /// Creates a model with explicit magnitudes.
    ///
    /// # Panics
    /// Panics on negative sigmas.
    pub fn new(sigma_h: f64, sigma_j: f64) -> Self {
        assert!(sigma_h >= 0.0 && sigma_j >= 0.0, "IceModel: negative sigma");
        IceModel { sigma_h, sigma_j }
    }

    /// True when both magnitudes are zero.
    pub fn is_none(&self) -> bool {
        self.sigma_h == 0.0 && self.sigma_j == 0.0
    }

    /// Returns a perturbed copy of `problem` (the topology is unchanged;
    /// only weights jitter), as seen by one anneal read.
    pub fn perturb(&self, problem: &Ising, rng: &mut Rng64) -> Ising {
        if self.is_none() {
            return problem.clone();
        }
        let mut noisy = problem.clone();
        if self.sigma_h > 0.0 {
            for i in 0..problem.num_vars() {
                noisy.add_h(i, rng.next_gaussian_with(0.0, self.sigma_h));
            }
        }
        if self.sigma_j > 0.0 {
            for &(i, j, _) in problem.edges() {
                noisy.add_coupling(i, j, rng.next_gaussian_with(0.0, self.sigma_j));
            }
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_problem() -> Ising {
        let mut ising = Ising::new(4);
        ising.set_h(0, 0.5);
        ising.set_h(2, -0.25);
        ising.set_coupling(0, 1, 1.0);
        ising.set_coupling(2, 3, -0.5);
        ising
    }

    #[test]
    fn none_model_is_identity() {
        let p = sample_problem();
        let mut rng = Rng64::new(1);
        let out = IceModel::none().perturb(&p, &mut rng);
        for i in 0..4 {
            assert_eq!(out.h(i), p.h(i));
        }
        assert_eq!(out.edges(), p.edges());
    }

    #[test]
    fn perturbation_preserves_topology() {
        let p = sample_problem();
        let mut rng = Rng64::new(2);
        let out = IceModel::default().perturb(&p, &mut rng);
        assert_eq!(out.num_vars(), 4);
        assert_eq!(out.edges().len(), p.edges().len());
        for (a, b) in out.edges().iter().zip(p.edges()) {
            assert_eq!((a.0, a.1), (b.0, b.1), "edge endpoints changed");
        }
    }

    #[test]
    fn perturbation_magnitude_matches_sigma() {
        let p = sample_problem();
        let model = IceModel::new(0.1, 0.05);
        let mut rng = Rng64::new(3);
        let trials = 2000;
        let mut h_err_sq = 0.0;
        let mut j_err_sq = 0.0;
        for _ in 0..trials {
            let out = model.perturb(&p, &mut rng);
            h_err_sq += (out.h(0) - p.h(0)).powi(2);
            j_err_sq += (out.coupling(0, 1) - p.coupling(0, 1)).powi(2);
        }
        let h_std = (h_err_sq / trials as f64).sqrt();
        let j_std = (j_err_sq / trials as f64).sqrt();
        assert!((h_std - 0.1).abs() < 0.01, "h std {h_std}");
        assert!((j_std - 0.05).abs() < 0.005, "J std {j_std}");
    }

    #[test]
    fn each_read_sees_different_noise() {
        let p = sample_problem();
        let model = IceModel::default();
        let mut rng = Rng64::new(4);
        let a = model.perturb(&p, &mut rng);
        let b = model.perturb(&p, &mut rng);
        assert!((a.h(0) - b.h(0)).abs() > 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative sigma")]
    fn negative_sigma_rejected() {
        IceModel::new(-0.1, 0.0);
    }
}
