//! D-Wave-2000Q-like device profile: energy scales and operating temperature.
//!
//! A transverse-field annealer implements (paper §2, refs [27, 38])
//!
//! ```text
//!   H(s) = −A(s)/2 · Σ_i σ_x^i  +  B(s)/2 · ( Σ_i h_i σ_z^i + Σ_{i<j} J_ij σ_z^i σ_z^j )
//! ```
//!
//! `A(s)` (quantum fluctuations) falls and `B(s)` (problem energy) rises as
//! the anneal fraction `s` goes 0 → 1. The exact 2000Q curves are published
//! device calibration data; this profile uses a table with the same
//! qualitative fingerprint — `A(0) ≫ kT`, near-exponential decay of `A`,
//! roughly linear growth of `B`, `A = B` crossing near `s ≈ 0.37`, and a
//! ~13.5 mK operating temperature — interpolated linearly. The crossing
//! location matters because it sets where reverse annealing's "useful `s_p`
//! band" sits (the paper finds RA works for `s_p ∈ 0.33–0.49`).
//!
//! Units: energies in GHz (`h = 1`), temperature via `k_B/h ≈ 20.837 GHz/K`.

/// Energy-scale and temperature profile of the simulated annealer.
#[derive(Debug, Clone)]
pub struct DWaveProfile {
    /// `(s, A(s) GHz, B(s) GHz)` table, ascending in `s`, covering [0, 1].
    table: Vec<(f64, f64, f64)>,
    /// Operating temperature in millikelvin.
    pub temperature_mk: f64,
}

/// Boltzmann constant over Planck constant, GHz per kelvin.
const KB_OVER_H_GHZ_PER_K: f64 = 20.836_619;

impl Default for DWaveProfile {
    fn default() -> Self {
        DWaveProfile::dw2000q_like()
    }
}

impl DWaveProfile {
    /// The 2000Q-like profile at the hardware's physical operating
    /// temperature (13.5 mK).
    pub fn dw2000q_like() -> Self {
        DWaveProfile {
            table: vec![
                (0.0, 7.80, 0.05),
                (0.1, 5.85, 0.70),
                (0.2, 4.20, 1.60),
                (0.3, 2.88, 2.70),
                (0.4, 1.86, 4.00),
                (0.5, 1.12, 5.45),
                (0.6, 0.62, 7.05),
                (0.7, 0.30, 8.80),
                (0.8, 0.12, 10.70),
                (0.9, 0.03, 12.70),
                (1.0, 0.00, 14.90),
            ],
            temperature_mk: 13.5,
        }
    }

    /// The **calibrated** profile the workspace's experiments use:
    /// [`DWaveProfile::dw2000q_like`] with the effective temperature lowered
    /// to 9 mK (β ≈ 1.5× physical).
    ///
    /// Classical Monte-Carlo kinetics over-estimates thermal hopping
    /// relative to the hardware's partly-coherent dynamics, so simulator
    /// studies routinely fit an *effective* temperature rather than the
    /// cryostat reading. 9 mK was chosen by the calibration study recorded
    /// in `EXPERIMENTS.md` — the coldest-grained setting at which (a)
    /// forward annealing retains its hardware-like small success
    /// probability, (b) reverse annealing from harvested low-ΔE_IS seeds
    /// repairs them at 10–20× the forward rate, and (c) the `s_p` band
    /// structure of the paper's Figure 8 appears.
    pub fn calibrated() -> Self {
        DWaveProfile {
            temperature_mk: 9.0,
            ..Self::dw2000q_like()
        }
    }

    /// A custom profile from a `(s, A, B)` table.
    ///
    /// # Panics
    /// Panics when the table has fewer than two rows, is not ascending in
    /// `s`, does not span `[0, 1]`, or the temperature is non-positive.
    pub fn from_table(table: Vec<(f64, f64, f64)>, temperature_mk: f64) -> Self {
        assert!(table.len() >= 2, "DWaveProfile: need at least two rows");
        assert_eq!(table[0].0, 0.0, "DWaveProfile: table must start at s = 0");
        assert_eq!(
            table.last().unwrap().0,
            1.0,
            "DWaveProfile: table must end at s = 1"
        );
        assert!(
            table.windows(2).all(|w| w[1].0 > w[0].0),
            "DWaveProfile: table must ascend in s"
        );
        assert!(
            temperature_mk > 0.0,
            "DWaveProfile: temperature must be > 0"
        );
        DWaveProfile {
            table,
            temperature_mk,
        }
    }

    fn interp(&self, s: f64, select: impl Fn(&(f64, f64, f64)) -> f64) -> f64 {
        let s = s.clamp(0.0, 1.0);
        for w in self.table.windows(2) {
            if s <= w[1].0 {
                let frac = (s - w[0].0) / (w[1].0 - w[0].0);
                return select(&w[0]) + frac * (select(&w[1]) - select(&w[0]));
            }
        }
        select(self.table.last().expect("validated: non-empty"))
    }

    /// Transverse-field scale `A(s)` in GHz.
    pub fn a_ghz(&self, s: f64) -> f64 {
        self.interp(s, |row| row.1)
    }

    /// Problem-Hamiltonian scale `B(s)` in GHz.
    pub fn b_ghz(&self, s: f64) -> f64 {
        self.interp(s, |row| row.2)
    }

    /// Thermal energy `k_B·T` in GHz.
    pub fn thermal_energy_ghz(&self) -> f64 {
        self.temperature_mk * 1e-3 * KB_OVER_H_GHZ_PER_K
    }

    /// Inverse temperature `β` in 1/GHz.
    pub fn beta(&self) -> f64 {
        1.0 / self.thermal_energy_ghz()
    }

    /// The anneal fraction where `A(s) = B(s)` (bisection on the
    /// interpolated curves) — a useful reference point for choosing `s_p`.
    pub fn crossing_s(&self) -> f64 {
        let mut lo = 0.0;
        let mut hi = 1.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.a_ghz(mid) > self.b_ghz(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_have_the_right_character() {
        let p = DWaveProfile::default();
        assert!(p.a_ghz(0.0) > 5.0, "A(0) should dwarf kT");
        assert!(p.a_ghz(1.0) < 1e-9, "A(1) should vanish");
        assert!(p.b_ghz(0.0) < 0.1, "B(0) should be tiny");
        assert!(p.b_ghz(1.0) > 10.0, "B(1) should be large");
    }

    #[test]
    fn a_decreases_b_increases() {
        let p = DWaveProfile::default();
        let mut prev_a = f64::INFINITY;
        let mut prev_b = -1.0;
        for k in 0..=20 {
            let s = k as f64 / 20.0;
            let a = p.a_ghz(s);
            let b = p.b_ghz(s);
            assert!(a <= prev_a + 1e-12, "A not monotone at s={s}");
            assert!(b >= prev_b - 1e-12, "B not monotone at s={s}");
            prev_a = a;
            prev_b = b;
        }
    }

    #[test]
    fn crossing_sits_in_the_papers_ra_band() {
        // The paper finds RA effective for s_p ∈ 0.33–0.49; the A=B crossing
        // should sit in that neighborhood.
        let p = DWaveProfile::default();
        let cross = p.crossing_s();
        assert!(
            (0.30..0.45).contains(&cross),
            "A=B crossing at s={cross}, outside the expected band"
        );
    }

    #[test]
    fn temperature_conversion_reference() {
        let p = DWaveProfile::default();
        // 13.5 mK ≈ 0.281 GHz.
        assert!((p.thermal_energy_ghz() - 0.2813).abs() < 1e-3);
        assert!((p.beta() - 1.0 / 0.2813).abs() < 0.1);
    }

    #[test]
    fn interpolation_hits_table_rows() {
        let p = DWaveProfile::default();
        assert!((p.a_ghz(0.5) - 1.12).abs() < 1e-12);
        assert!((p.b_ghz(0.8) - 10.70).abs() < 1e-12);
        // Midpoint interpolation.
        assert!((p.a_ghz(0.05) - (7.80 + 5.85) / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must start at s = 0")]
    fn bad_table_rejected() {
        DWaveProfile::from_table(vec![(0.1, 1.0, 1.0), (1.0, 0.0, 2.0)], 13.5);
    }
}
