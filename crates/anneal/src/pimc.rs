//! Path-integral Monte Carlo (PIMC / simulated quantum annealing).
//!
//! The standard classical simulation of a transverse-field annealer: the
//! Suzuki-Trotter decomposition maps the quantum partition function at
//! inverse temperature `β` onto a classical Ising system of `P` coupled
//! replicas ("Trotter slices") with action
//!
//! ```text
//!   S = Σ_k  β·B(s)/(2P) · E_problem(slice_k)  −  J⊥(s) Σ_{i,k} s_{i,k} s_{i,k+1}
//!   J⊥(s) = −½ ln tanh( β·A(s) / (2P) )      (periodic in k)
//! ```
//!
//! Early in the anneal `A` is large → `J⊥` is small → slices fluctuate
//! independently (strong quantum fluctuations). Late in the anneal `A → 0`
//! → `J⊥ → ∞` → the replicas lock into a single classical state. Reverse
//! annealing initializes **all slices to the programmed classical state**
//! and re-opens fluctuations down to `s_p`, exactly the "refined local
//! search" semantics of the paper's §4.1.
//!
//! Moves per sweep: one Metropolis update per (site, slice) plus one
//! all-slice ("global") flip per site — the standard mix that keeps dynamics
//! ergodic when `J⊥` is large.
//!
//! Readout: per-site majority vote across slices (D-Wave readout projects
//! the state; at `s = 1` slices agree except for rare unfrozen sites).

use crate::dwave::DWaveProfile;
use crate::engine::{resolve_initial, AnnealEngine, AnnealParams};
use crate::schedule::AnnealSchedule;
use hqw_math::Rng64;
use hqw_qubo::{CsrIsing, Ising};

/// Cap on the inter-slice coupling: beyond this the alignment Boltzmann
/// penalty (`e^{−4·J⊥}` ≈ 10⁻³⁵) is indistinguishable from frozen.
const J_PERP_MAX: f64 = 20.0;

/// Floor on `A(s)` so `J⊥` stays finite at `s = 1`.
const A_FLOOR_GHZ: f64 = 1e-12;

/// Path-integral quantum Monte Carlo engine.
#[derive(Debug, Clone, Copy)]
pub struct PimcEngine {
    /// Number of Trotter slices `P ≥ 2`. More slices = finer quantum
    /// discretization and more work; 16–32 is the usual range.
    pub trotter_slices: usize,
    /// Also attempt one all-slice ("global") flip per site per sweep.
    ///
    /// Global moves accelerate *equilibration* but are unphysical as a model
    /// of annealer dynamics — a collective flip across all of imaginary time
    /// teleports between classical states with no tunneling cost, which
    /// erases exactly the initial-state memory reverse annealing relies on.
    /// They are **off by default** (annealer-faithful dynamics) and exist
    /// for the sampler's equilibrium/ablation uses.
    pub global_moves: bool,
    /// Attempt one imaginary-time *cluster* flip per site per sweep
    /// (Wolff segments along the Trotter ring, field terms via Metropolis).
    ///
    /// Single-site updates alone underestimate tunneling badly once `J⊥`
    /// grows: flipping any spin requires nucleating a kink pair, whose cost
    /// is unrelated to the physical barrier. Cluster updates let a whole
    /// worldline segment flip at once — early in the anneal the segments are
    /// short (quantum fluctuations), late they span all slices and reduce to
    /// thermally-activated classical flips at the device temperature. This
    /// is the standard move set of simulated-quantum-annealing codes and is
    /// **on by default**.
    pub cluster_moves: bool,
}

impl Default for PimcEngine {
    fn default() -> Self {
        PimcEngine {
            trotter_slices: 16,
            global_moves: false,
            cluster_moves: true,
        }
    }
}

impl PimcEngine {
    /// Creates an engine with the given slice count (cluster moves on,
    /// global moves off).
    ///
    /// # Panics
    /// Panics when `trotter_slices < 2` (the slice-coupling term degenerates).
    pub fn new(trotter_slices: usize) -> Self {
        assert!(
            trotter_slices >= 2,
            "PimcEngine: need at least 2 Trotter slices"
        );
        PimcEngine {
            trotter_slices,
            global_moves: false,
            cluster_moves: true,
        }
    }

    /// Inter-slice ferromagnetic coupling `J⊥` at anneal fraction `s`.
    pub fn j_perp(&self, profile: &DWaveProfile, beta: f64, s: f64) -> f64 {
        let gamma = (profile.a_ghz(s) / 2.0).max(A_FLOOR_GHZ);
        let arg = (beta * gamma / self.trotter_slices as f64).tanh();
        (-0.5 * arg.ln()).min(J_PERP_MAX)
    }
}

impl AnnealEngine for PimcEngine {
    fn name(&self) -> &'static str {
        "PIMC"
    }

    fn run(
        &self,
        problem: &Ising,
        profile: &DWaveProfile,
        schedule: &AnnealSchedule,
        params: &AnnealParams,
        initial: Option<&[i8]>,
        rng: &mut Rng64,
    ) -> Vec<i8> {
        params.validate();
        let csr = CsrIsing::from_ising(problem);
        let n = csr.num_vars();
        let p = self.trotter_slices;
        if n == 0 {
            return Vec::new();
        }
        let beta = params.beta(profile);
        let init = resolve_initial(schedule, n, initial);

        // Slice-major replica storage: spins[k*n + i].
        let mut spins: Vec<i8> = match &init {
            Some(state) => (0..p).flat_map(|_| state.iter().copied()).collect(),
            // Forward start (s = 0): the transverse field dominates and the
            // computational-basis marginal is uniform — random replicas.
            None => (0..p * n)
                .map(|_| if rng.next_bool() { 1 } else { -1 })
                .collect(),
        };

        // Incrementally-maintained classical local fields per (slice, site):
        // h_eff[k*n + i] = h_i + Σ_j J_ij s_{j,k}. Proposals read them in
        // O(1); only accepted flips pay an O(degree) neighbor update.
        let mut h_eff: Vec<f64> = vec![0.0; p * n];
        for k in 0..p {
            csr.fill_local_fields(&spins[k * n..(k + 1) * n], &mut h_eff[k * n..(k + 1) * n]);
        }
        // Flips spin (slice base, site i) and folds its sign change into the
        // cached fields of its in-slice neighbors.
        let flip_and_update = |spins: &mut [i8], h_eff: &mut [f64], base: usize, i: usize| {
            let s_new = -spins[base + i];
            spins[base + i] = s_new;
            let ds = 2.0 * s_new as f64;
            let (cols, ws) = csr.row(i);
            for (&j, &w) in cols.iter().zip(ws) {
                h_eff[base + j as usize] += w * ds;
            }
        };

        let total_sweeps = params.total_sweeps(schedule);
        let duration = schedule.duration_us();
        let p_f = p as f64;

        for sweep in 0..total_sweeps {
            let t = (sweep as f64 + 0.5) * duration / total_sweeps as f64;
            let s = schedule.s_at(t);
            let j_perp = self.j_perp(profile, beta, s);
            let k_cl = beta * profile.b_ghz(s) / (2.0 * p_f);
            let gate = params.gate(profile.a_ghz(s));
            if gate <= 0.0 {
                continue; // fully frozen: no dynamics at this point
            }

            // Single (site, slice) Metropolis updates (lazy chain: the
            // freeze-out gate scales every acceptance).
            for k in 0..p {
                let up = if k + 1 == p { 0 } else { k + 1 };
                let down = if k == 0 { p - 1 } else { k - 1 };
                let base = k * n;
                for i in 0..n {
                    let sik = spins[base + i] as f64;
                    let field = h_eff[base + i];
                    let time_neighbors = (spins[up * n + i] + spins[down * n + i]) as f64;
                    // Δ action for flipping s_{i,k}: the slice energy changes
                    // by −2·s·field and each time link by +2·J⊥·s·neighbor.
                    let delta = -2.0 * sik * k_cl * field + 2.0 * sik * j_perp * time_neighbors;
                    let accept = if delta <= 0.0 {
                        gate
                    } else {
                        gate * (-delta).exp()
                    };
                    if rng.next_f64() < accept {
                        flip_and_update(&mut spins, &mut h_eff, base, i);
                    }
                }
            }

            // Imaginary-time cluster moves: per site, grow a Wolff segment
            // along the Trotter ring with bond probability 1 − e^{−2·J⊥}
            // over aligned time-neighbors, then flip it, accepting on the
            // classical (field) part alone. Stochastic bond growth makes the
            // proposal symmetric; at large J⊥ the segment usually wraps the
            // whole ring and the move degenerates into a classical
            // Metropolis flip at the full device β — thermal activation.
            if self.cluster_moves {
                let p_bond = 1.0 - (-2.0 * j_perp).exp();
                for i in 0..n {
                    let start = rng.next_index(p);
                    let s0 = spins[start * n + i];
                    // Membership mask doubles as the visited set.
                    let mut in_cluster = vec![false; p];
                    in_cluster[start] = true;
                    let mut members = vec![start];
                    // Grow forward (k+1 direction) then backward.
                    let mut k = start;
                    loop {
                        let next = if k + 1 == p { 0 } else { k + 1 };
                        if in_cluster[next] || spins[next * n + i] != s0 || rng.next_f64() >= p_bond
                        {
                            break;
                        }
                        in_cluster[next] = true;
                        members.push(next);
                        k = next;
                    }
                    k = start;
                    loop {
                        let prev = if k == 0 { p - 1 } else { k - 1 };
                        if in_cluster[prev] || spins[prev * n + i] != s0 || rng.next_f64() >= p_bond
                        {
                            break;
                        }
                        in_cluster[prev] = true;
                        members.push(prev);
                        k = prev;
                    }
                    // Classical action change of flipping the whole segment.
                    // The cached fields of site i never contain s_i itself
                    // (no self-coupling), so the per-slice deltas are
                    // independent and can all be read before flipping.
                    let mut delta = 0.0;
                    for &kk in &members {
                        delta += -2.0 * s0 as f64 * k_cl * h_eff[kk * n + i];
                    }
                    let accept = if delta <= 0.0 {
                        gate
                    } else {
                        gate * (-delta).exp()
                    };
                    if rng.next_f64() < accept {
                        for &kk in &members {
                            flip_and_update(&mut spins, &mut h_eff, kk * n, i);
                        }
                    }
                }
            }

            // Optional global moves: flip site i in every slice (time links
            // unchanged). See the field docs for why this is off by default.
            if self.global_moves {
                for i in 0..n {
                    let mut delta = 0.0;
                    for k in 0..p {
                        let base = k * n;
                        let sik = spins[base + i] as f64;
                        delta += -2.0 * sik * k_cl * h_eff[base + i];
                    }
                    let accept = if delta <= 0.0 {
                        gate
                    } else {
                        gate * (-delta).exp()
                    };
                    if rng.next_f64() < accept {
                        for k in 0..p {
                            flip_and_update(&mut spins, &mut h_eff, k * n, i);
                        }
                    }
                }
            }
        }

        // Majority-vote readout across slices.
        (0..n)
            .map(|i| {
                let sum: i32 = (0..p).map(|k| spins[k * n + i] as i32).sum();
                if sum >= 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreezeOut;
    use hqw_qubo::solution::bits_to_spins;

    fn ferromagnet(n: usize) -> Ising {
        // All-ferromagnetic chain with a field pinning the ground state to
        // all-up: E(all +1) is the unique minimum.
        let mut ising = Ising::new(n);
        for i in 0..n {
            ising.set_h(i, -0.4);
            if i + 1 < n {
                ising.set_coupling(i, i + 1, -1.0);
            }
        }
        ising
    }

    #[test]
    fn j_perp_is_monotone_in_s() {
        let engine = PimcEngine::default();
        let profile = DWaveProfile::default();
        let beta = profile.beta();
        let mut prev = 0.0;
        for k in 0..=10 {
            let s = k as f64 / 10.0;
            let j = engine.j_perp(&profile, beta, s);
            assert!(j >= prev - 1e-12, "J⊥ not monotone at s={s}");
            assert!(j <= J_PERP_MAX);
            prev = j;
        }
        // Late anneal: effectively frozen (alignment penalty e^{−4·J⊥} < 10⁻¹⁷).
        assert!(engine.j_perp(&profile, beta, 1.0) >= 10.0);
    }

    #[test]
    fn forward_anneal_finds_ferromagnetic_ground_state() {
        let ising = ferromagnet(8);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(2.0).unwrap();
        let params = AnnealParams {
            sweeps_per_us: 64,
            beta_override: None,
            freeze_out: Some(FreezeOut::default()),
        };
        let mut rng = Rng64::new(11);
        let mut hits = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, None, &mut rng);
            if out.iter().all(|&s| s == 1) {
                hits += 1;
            }
        }
        assert!(hits >= 8, "FA found the 8-spin ferromagnet {hits}/10 times");
    }

    #[test]
    fn reverse_anneal_at_high_sp_preserves_initial_state() {
        // s_p close to 1 re-opens almost no fluctuations: the programmed
        // state must survive (the paper's "s_p should not be too close to 1
        // … [or] too close to 0" trade-off, upper end). The all-down state
        // is a *local minimum* of the field-pinned-up ferromagnet, so only
        // genuine fluctuations — not plain downhill relaxation — can move it.
        let ising = ferromagnet(8);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.95, 0.2).unwrap();
        let params = AnnealParams::default();
        let init = bits_to_spins(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = Rng64::new(13);
        let mut preserved = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out == init {
                preserved += 1;
            }
        }
        assert!(
            preserved >= 8,
            "shallow RA should preserve the initial state, got {preserved}/10"
        );
    }

    #[test]
    fn reverse_anneal_at_low_sp_wipes_initial_state() {
        // s_p near 0 erases the initial information (the paper's lower end):
        // starting from the all-down state of a field-pinned-up ferromagnet,
        // deep reverse annealing should mostly recover all-up.
        let ising = ferromagnet(6);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.05, 1.0).unwrap();
        let params = AnnealParams {
            sweeps_per_us: 64,
            beta_override: None,
            freeze_out: Some(FreezeOut::default()),
        };
        let init = vec![-1i8; 6];
        let mut rng = Rng64::new(17);
        let mut recovered = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out.iter().all(|&s| s == 1) {
                recovered += 1;
            }
        }
        assert!(
            recovered >= 7,
            "deep RA should escape the programmed excited state, got {recovered}/10"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ising = ferromagnet(6);
        let engine = PimcEngine::default();
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let params = AnnealParams::default();
        let a = engine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(5),
        );
        let b = engine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_problem_returns_empty_state() {
        let ising = Ising::new(0);
        let engine = PimcEngine::default();
        let out = engine.run(
            &ising,
            &DWaveProfile::default(),
            &AnnealSchedule::forward(1.0).unwrap(),
            &AnnealParams::default(),
            None,
            &mut Rng64::new(1),
        );
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 2 Trotter slices")]
    fn single_slice_rejected() {
        PimcEngine::new(1);
    }
}
