//! Path-integral Monte Carlo (PIMC / simulated quantum annealing).
//!
//! The standard classical simulation of a transverse-field annealer: the
//! Suzuki-Trotter decomposition maps the quantum partition function at
//! inverse temperature `β` onto a classical Ising system of `P` coupled
//! replicas ("Trotter slices") with action
//!
//! ```text
//!   S = Σ_k  β·B(s)/(2P) · E_problem(slice_k)  −  J⊥(s) Σ_{i,k} s_{i,k} s_{i,k+1}
//!   J⊥(s) = −½ ln tanh( β·A(s) / (2P) )      (periodic in k)
//! ```
//!
//! Early in the anneal `A` is large → `J⊥` is small → slices fluctuate
//! independently (strong quantum fluctuations). Late in the anneal `A → 0`
//! → `J⊥ → ∞` → the replicas lock into a single classical state. Reverse
//! annealing initializes **all slices to the programmed classical state**
//! and re-opens fluctuations down to `s_p`, exactly the "refined local
//! search" semantics of the paper's §4.1.
//!
//! Moves per sweep: one Metropolis update per (site, slice) plus one
//! all-slice ("global") flip per site — the standard mix that keeps dynamics
//! ergodic when `J⊥` is large.
//!
//! Readout: per-site majority vote across slices (D-Wave readout projects
//! the state; at `s = 1` slices agree except for rare unfrozen sites).

use crate::dwave::DWaveProfile;
use crate::engine::{resolve_initial, AnnealEngine, AnnealParams};
use crate::schedule::AnnealSchedule;
use hqw_math::fastmath::exp_fast;
use hqw_math::Rng64;
use hqw_qubo::{CsrIsing, Ising, SweepKernel};

/// Cap on the inter-slice coupling: beyond this the alignment Boltzmann
/// penalty (`e^{−4·J⊥}` ≈ 10⁻³⁵) is indistinguishable from frozen.
const J_PERP_MAX: f64 = 20.0;

/// Floor on `A(s)` so `J⊥` stays finite at `s = 1`.
const A_FLOOR_GHZ: f64 = 1e-12;

/// Fast-kernel sweep skip: when the freeze-out gate drops below this, the
/// expected number of accepted flips in an entire sweep is ≪ 1 (acceptance
/// ≤ gate per proposal), so the sweep is statistically indistinguishable
/// from frozen and the Fast kernel skips it outright.
const FAST_GATE_SKIP: f64 = 1e-8;

/// Fast-kernel reject cutoff: uphill moves with `Δ − ln(gate)` above this
/// have acceptance below `e⁻³⁰` and are rejected without an RNG draw.
const FAST_REJECT_CUTOFF: f64 = 30.0;

/// Path-integral quantum Monte Carlo engine.
#[derive(Debug, Clone, Copy)]
pub struct PimcEngine {
    /// Number of Trotter slices `P ≥ 2`. More slices = finer quantum
    /// discretization and more work; 16–32 is the usual range.
    pub trotter_slices: usize,
    /// Also attempt one all-slice ("global") flip per site per sweep.
    ///
    /// Global moves accelerate *equilibration* but are unphysical as a model
    /// of annealer dynamics — a collective flip across all of imaginary time
    /// teleports between classical states with no tunneling cost, which
    /// erases exactly the initial-state memory reverse annealing relies on.
    /// They are **off by default** (annealer-faithful dynamics) and exist
    /// for the sampler's equilibrium/ablation uses.
    pub global_moves: bool,
    /// Attempt one imaginary-time *cluster* flip per site per sweep
    /// (Wolff segments along the Trotter ring, field terms via Metropolis).
    ///
    /// Single-site updates alone underestimate tunneling badly once `J⊥`
    /// grows: flipping any spin requires nucleating a kink pair, whose cost
    /// is unrelated to the physical barrier. Cluster updates let a whole
    /// worldline segment flip at once — early in the anneal the segments are
    /// short (quantum fluctuations), late they span all slices and reduce to
    /// thermally-activated classical flips at the device temperature. This
    /// is the standard move set of simulated-quantum-annealing codes and is
    /// **on by default**.
    pub cluster_moves: bool,
}

impl Default for PimcEngine {
    fn default() -> Self {
        PimcEngine {
            trotter_slices: 16,
            global_moves: false,
            cluster_moves: true,
        }
    }
}

impl PimcEngine {
    /// Creates an engine with the given slice count (cluster moves on,
    /// global moves off).
    ///
    /// # Panics
    /// Panics when `trotter_slices < 2` (the slice-coupling term degenerates).
    pub fn new(trotter_slices: usize) -> Self {
        assert!(
            trotter_slices >= 2,
            "PimcEngine: need at least 2 Trotter slices"
        );
        PimcEngine {
            trotter_slices,
            global_moves: false,
            cluster_moves: true,
        }
    }

    /// Inter-slice ferromagnetic coupling `J⊥` at anneal fraction `s`.
    pub fn j_perp(&self, profile: &DWaveProfile, beta: f64, s: f64) -> f64 {
        let gamma = (profile.a_ghz(s) / 2.0).max(A_FLOOR_GHZ);
        let arg = (beta * gamma / self.trotter_slices as f64).tanh();
        (-0.5 * arg.ln()).min(J_PERP_MAX)
    }
}

impl AnnealEngine for PimcEngine {
    fn name(&self) -> &'static str {
        "PIMC"
    }

    fn run(
        &self,
        problem: &Ising,
        profile: &DWaveProfile,
        schedule: &AnnealSchedule,
        params: &AnnealParams,
        initial: Option<&[i8]>,
        rng: &mut Rng64,
    ) -> Vec<i8> {
        params.validate();
        let csr = CsrIsing::from_ising(problem);
        let n = csr.num_vars();
        if n == 0 {
            return Vec::new();
        }
        let init = resolve_initial(schedule, n, initial);
        // The Fast kernel packs a site's Trotter worldline into one u64, so
        // it applies up to 64 slices; beyond that fall back to Exact.
        if params.kernel == SweepKernel::Fast && self.trotter_slices <= 64 {
            self.run_fast(&csr, profile, schedule, params, init, rng)
        } else {
            self.run_exact(&csr, profile, schedule, params, init, rng)
        }
    }
}

impl PimcEngine {
    /// The bit-identical kernel: f64 fields, one RNG draw per proposal.
    /// Storage-layout and buffer-reuse optimizations are allowed here only
    /// when they replay the identical float and RNG streams (golden-pinned).
    fn run_exact(
        &self,
        csr: &CsrIsing,
        profile: &DWaveProfile,
        schedule: &AnnealSchedule,
        params: &AnnealParams,
        init: Option<Vec<i8>>,
        rng: &mut Rng64,
    ) -> Vec<i8> {
        let n = csr.num_vars();
        let p = self.trotter_slices;
        let beta = params.beta(profile);

        // Slice-major replica storage: spins[k*n + i].
        let mut spins: Vec<i8> = match &init {
            Some(state) => (0..p).flat_map(|_| state.iter().copied()).collect(),
            // Forward start (s = 0): the transverse field dominates and the
            // computational-basis marginal is uniform — random replicas.
            None => (0..p * n)
                .map(|_| if rng.next_bool() { 1 } else { -1 })
                .collect(),
        };

        // Incrementally-maintained classical local fields per (slice, site):
        // h_eff[k*n + i] = h_i + Σ_j J_ij s_{j,k}. Proposals read them in
        // O(1); only accepted flips pay an O(degree) neighbor update.
        let mut h_eff: Vec<f64> = vec![0.0; p * n];
        for k in 0..p {
            csr.fill_local_fields(&spins[k * n..(k + 1) * n], &mut h_eff[k * n..(k + 1) * n]);
        }
        // Flips spin (slice base, site i) and folds its sign change into the
        // cached fields of its in-slice neighbors (contiguous-run AXPY —
        // bit-identical to the historical gather).
        let flip_and_update = |spins: &mut [i8], h_eff: &mut [f64], base: usize, i: usize| {
            let s_new = -spins[base + i];
            spins[base + i] = s_new;
            let ds = 2.0 * s_new as f64;
            csr.axpy_row(&mut h_eff[base..base + n], i, ds);
        };

        let total_sweeps = params.total_sweeps(schedule);
        let duration = schedule.duration_us();
        let p_f = p as f64;
        // Cluster-move scratch, hoisted out of the sweep loop (the per-site
        // allocation was the profile's top hit; reusing the buffers changes
        // no RNG draw and no float op).
        let mut in_cluster = vec![false; p];
        let mut members: Vec<usize> = Vec::with_capacity(p);

        for sweep in 0..total_sweeps {
            let t = (sweep as f64 + 0.5) * duration / total_sweeps as f64;
            let s = schedule.s_at(t);
            let j_perp = self.j_perp(profile, beta, s);
            let k_cl = beta * profile.b_ghz(s) / (2.0 * p_f);
            let gate = params.gate(profile.a_ghz(s));
            if gate <= 0.0 {
                continue; // fully frozen: no dynamics at this point
            }

            // Single (site, slice) Metropolis updates (lazy chain: the
            // freeze-out gate scales every acceptance).
            for k in 0..p {
                let up = if k + 1 == p { 0 } else { k + 1 };
                let down = if k == 0 { p - 1 } else { k - 1 };
                let base = k * n;
                for i in 0..n {
                    let sik = spins[base + i] as f64;
                    let field = h_eff[base + i];
                    let time_neighbors = (spins[up * n + i] + spins[down * n + i]) as f64;
                    // Δ action for flipping s_{i,k}: the slice energy changes
                    // by −2·s·field and each time link by +2·J⊥·s·neighbor.
                    let delta = -2.0 * sik * k_cl * field + 2.0 * sik * j_perp * time_neighbors;
                    let accept = if delta <= 0.0 {
                        gate
                    } else {
                        gate * (-delta).exp()
                    };
                    if rng.next_f64() < accept {
                        flip_and_update(&mut spins, &mut h_eff, base, i);
                    }
                }
            }

            // Imaginary-time cluster moves: per site, grow a Wolff segment
            // along the Trotter ring with bond probability 1 − e^{−2·J⊥}
            // over aligned time-neighbors, then flip it, accepting on the
            // classical (field) part alone. Stochastic bond growth makes the
            // proposal symmetric; at large J⊥ the segment usually wraps the
            // whole ring and the move degenerates into a classical
            // Metropolis flip at the full device β — thermal activation.
            if self.cluster_moves {
                let p_bond = 1.0 - (-2.0 * j_perp).exp();
                for i in 0..n {
                    let start = rng.next_index(p);
                    let s0 = spins[start * n + i];
                    // Membership mask doubles as the visited set.
                    in_cluster[start] = true;
                    members.push(start);
                    // Grow forward (k+1 direction) then backward.
                    let mut k = start;
                    loop {
                        let next = if k + 1 == p { 0 } else { k + 1 };
                        if in_cluster[next] || spins[next * n + i] != s0 || rng.next_f64() >= p_bond
                        {
                            break;
                        }
                        in_cluster[next] = true;
                        members.push(next);
                        k = next;
                    }
                    k = start;
                    loop {
                        let prev = if k == 0 { p - 1 } else { k - 1 };
                        if in_cluster[prev] || spins[prev * n + i] != s0 || rng.next_f64() >= p_bond
                        {
                            break;
                        }
                        in_cluster[prev] = true;
                        members.push(prev);
                        k = prev;
                    }
                    // Classical action change of flipping the whole segment.
                    // The cached fields of site i never contain s_i itself
                    // (no self-coupling), so the per-slice deltas are
                    // independent and can all be read before flipping.
                    let mut delta = 0.0;
                    for &kk in &members {
                        delta += -2.0 * s0 as f64 * k_cl * h_eff[kk * n + i];
                    }
                    let accept = if delta <= 0.0 {
                        gate
                    } else {
                        gate * (-delta).exp()
                    };
                    if rng.next_f64() < accept {
                        for &kk in &members {
                            flip_and_update(&mut spins, &mut h_eff, kk * n, i);
                        }
                    }
                    for &kk in &members {
                        in_cluster[kk] = false;
                    }
                    members.clear();
                }
            }

            // Optional global moves: flip site i in every slice (time links
            // unchanged). See the field docs for why this is off by default.
            if self.global_moves {
                for i in 0..n {
                    let mut delta = 0.0;
                    for k in 0..p {
                        let base = k * n;
                        let sik = spins[base + i] as f64;
                        delta += -2.0 * sik * k_cl * h_eff[base + i];
                    }
                    let accept = if delta <= 0.0 {
                        gate
                    } else {
                        gate * (-delta).exp()
                    };
                    if rng.next_f64() < accept {
                        for k in 0..p {
                            flip_and_update(&mut spins, &mut h_eff, k * n, i);
                        }
                    }
                }
            }
        }

        // Majority-vote readout across slices.
        (0..n)
            .map(|i| {
                let sum: i32 = (0..p).map(|k| spins[k * n + i] as i32).sum();
                if sum >= 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    /// The Fast kernel: each site's Trotter worldline lives in one `u64`
    /// (bit `k` = slice `k` up), fields are f32 (periodically rebuilt),
    /// certain accepts skip the RNG draw, hopeless rejects skip `exp` and
    /// the draw, and near-frozen sweeps are skipped outright. Statistically
    /// equivalent to [`Self::run_exact`], not bit-identical.
    #[allow(clippy::needless_range_loop)]
    fn run_fast(
        &self,
        csr: &CsrIsing,
        profile: &DWaveProfile,
        schedule: &AnnealSchedule,
        params: &AnnealParams,
        init: Option<Vec<i8>>,
        rng: &mut Rng64,
    ) -> Vec<i8> {
        let n = csr.num_vars();
        let p = self.trotter_slices;
        let beta = params.beta(profile);
        let mask_p: u64 = if p == 64 { !0 } else { (1u64 << p) - 1 };

        // Site-major worldline words: bit k of words[i] = spin (i, slice k).
        let mut words: Vec<u64> = match &init {
            Some(state) => state
                .iter()
                .map(|&s| if s > 0 { mask_p } else { 0 })
                .collect(),
            None => (0..n).map(|_| rng.next_u64() & mask_p).collect(),
        };
        // Site-major f32 fields: h_eff[i*p + k]. A site's whole worldline of
        // fields is one contiguous (≤ 256 B) row, so the per-site proposal
        // loop, cluster delta walks, and global-move sums all stream
        // stride-1 — the Exact kernel's slice-major layout would make every
        // one of those a stride-n gather. Built once from the packed words,
        // then maintained incrementally by flips (f32 drift is acceptable
        // here: PIMC readout is a majority vote over slices, not an energy
        // report).
        let mut h_eff = vec![0.0f32; n * p];
        {
            // ±1 worldline signs unpacked once, so the rebuild is a chain of
            // contiguous length-p AXPYs instead of per-bit extraction.
            let mut sf = vec![0.0f32; n * p];
            for (j, chunk) in sf.chunks_exact_mut(p).enumerate() {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = (2 * ((words[j] >> k) & 1) as i32 - 1) as f32;
                }
            }
            for i in 0..n {
                let (cols, w32) = csr.row_f32(i);
                let hi = csr.h(i) as f32;
                let row = &mut h_eff[i * p..(i + 1) * p];
                row.fill(hi);
                for (&j, &w) in cols.iter().zip(w32) {
                    let src = &sf[j as usize * p..(j as usize + 1) * p];
                    for (f, &s) in row.iter_mut().zip(src) {
                        *f += w * s;
                    }
                }
            }
        }

        // Flips spin (i, k): the sign change lands in the *neighbors'* field
        // rows at slice k (a site's own field never depends on its own spin).
        let flip = |words: &mut [u64], h_eff: &mut [f32], i: usize, k: usize| {
            let s_old = (2 * ((words[i] >> k) & 1) as i32 - 1) as f32;
            words[i] ^= 1u64 << k;
            let dw = -2.0 * s_old;
            let (cols, w32) = csr.row_f32(i);
            for (&j, &w) in cols.iter().zip(w32) {
                h_eff[j as usize * p + k] += w * dw;
            }
        };

        let total_sweeps = params.total_sweeps(schedule);
        let duration = schedule.duration_us();
        let p_f = p as f64;

        for sweep in 0..total_sweeps {
            let t = (sweep as f64 + 0.5) * duration / total_sweeps as f64;
            let s = schedule.s_at(t);
            let j_perp = self.j_perp(profile, beta, s);
            let k_cl = beta * profile.b_ghz(s) / (2.0 * p_f);
            let gate = params.gate(profile.a_ghz(s));
            if gate < FAST_GATE_SKIP {
                continue; // expected accepted flips per sweep ≪ 1
            }
            let neg_ln_gate = -gate.ln(); // ≥ 0; 0 when the gate is open
            let neg_ln_gate32 = neg_ln_gate as f32;
            let certain = gate >= 1.0;
            let log2_gate = gate.log2() as f32; // ≤ 0
                                                // Δ = −2s·K·h + 2s·J⊥·(2·tn − 2) = −s·(2K·h − 4J⊥·(tn − 1)):
                                                // one fused magnitude, sign applied by an IEEE sign-bit XOR.
            let kcl2 = (2.0 * k_cl) as f32;
            let jp4 = (4.0 * j_perp) as f32;
            const TN1: [f32; 3] = [-1.0, 0.0, 1.0];

            // Site-outer sweep order (vs. Exact's slice-outer): every
            // (site, slice) pair is still proposed exactly once per sweep,
            // and the site-major field rows make the inner loop stride-1.
            for i in 0..n {
                let row = i * p;
                // Cyclic rotations expose both time-neighbors of slice k as
                // bit k of one word each — no per-k wraparound branches.
                // They are rebuilt after every accepted flip (rare in the
                // frozen tail, cheap anywhere).
                let mut w = words[i];
                let mut ru = ((w >> 1) | (w << (p - 1))) & mask_p;
                let mut rd = ((w << 1) | (w >> (p - 1))) & mask_p;
                for k in 0..p {
                    let tn = ((ru >> k) & 1) + ((rd >> k) & 1);
                    let mag = kcl2 * h_eff[row + k] - jp4 * TN1[tn as usize];
                    // bit = 1 ⇒ s = +1 ⇒ Δ = −mag (sign-bit XOR, no mul).
                    let delta = f32::from_bits(mag.to_bits() ^ ((((w >> k) & 1) as u32) << 31));
                    let accept = if delta <= 0.0 {
                        if certain {
                            true // acceptance 1: no draw needed
                        } else {
                            rng.next_f64() < gate
                        }
                    } else if delta + neg_ln_gate32 > FAST_REJECT_CUTOFF as f32 {
                        false // acceptance < e⁻³⁰: no draw needed
                    } else {
                        // Same log2-octave Metropolis filter as the SA Fast
                        // kernel: the draw's leading zeros bound log₂(u), so
                        // `u < gate·e^{−Δ}` is decided without the
                        // exponential except in the one boundary octave.
                        let r = rng.next_u64();
                        let lz = r.leading_zeros() as f32;
                        let t = log2_gate - delta * std::f32::consts::LOG2_E;
                        if t >= -lz {
                            true
                        } else if t <= -(lz + 1.0) {
                            false
                        } else {
                            (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
                                < gate * exp_fast(-(delta as f64))
                        }
                    };
                    if accept {
                        flip(&mut words, &mut h_eff, i, k);
                        w = words[i];
                        ru = ((w >> 1) | (w << (p - 1))) & mask_p;
                        rd = ((w << 1) | (w >> (p - 1))) & mask_p;
                    }
                }
            }

            if self.cluster_moves {
                let p_bond = 1.0 - (-2.0 * j_perp).exp();
                // At the j_perp cap, 1 − e⁻⁴⁰ rounds to exactly 1.0 in f64 —
                // `next_f64() < 1.0` always holds, so bonds never fail and
                // the Bernoulli chains below are skipped outright. This is
                // the late-anneal regime where clusters span the whole ring.
                let frozen_bonds = p_bond >= 1.0;
                for i in 0..n {
                    let start = rng.next_index(p);
                    let w = words[i];
                    let s0_bit = (w >> start) & 1;
                    // Bits whose spin matches the seed slice; cyclic
                    // doubling makes runs that wrap the time boundary
                    // contiguous in the 2p-bit extension. One bit-scan per
                    // direction replaces the Exact kernel's per-step
                    // alignment + visited checks; the Bernoulli bond draws
                    // themselves are identical.
                    let eq = if s0_bit == 1 { w } else { !w & mask_p };
                    let ext = ((eq as u128) << p) | eq as u128;
                    let fwd_cap = ((ext >> (start + 1)).trailing_ones() as usize).min(p - 1);
                    let mut fwd = 0;
                    if frozen_bonds {
                        fwd = fwd_cap;
                    } else {
                        while fwd < fwd_cap && rng.next_f64() < p_bond {
                            fwd += 1;
                        }
                    }
                    let bwd_cap =
                        ((ext << (128 - start - p)).leading_ones() as usize).min(p - 1 - fwd);
                    let mut bwd = 0;
                    if frozen_bonds {
                        bwd = bwd_cap;
                    } else {
                        while bwd < bwd_cap && rng.next_f64() < p_bond {
                            bwd += 1;
                        }
                    }
                    // Contiguous cyclic run [start − bwd, start + fwd]: at
                    // most two contiguous index spans once unwrapped, so the
                    // field reads and neighbor updates below are plain slice
                    // walks the compiler vectorizes — no per-bit scans.
                    let len = fwd + bwd + 1;
                    let lo = (start + p - bwd) % p;
                    let run = ((1u128 << len) - 1) << lo;
                    let mask = ((run | (run >> p)) as u64) & mask_p;
                    let e1 = (lo + len).min(p); // first span: [lo, e1)
                    let l2 = lo + len - e1; // wrap span: [0, l2)
                    let s0 = (2 * s0_bit as i32 - 1) as f64;
                    let row = i * p;
                    let mut field_sum = 0.0f32;
                    for &f in &h_eff[row + lo..row + e1] {
                        field_sum += f;
                    }
                    for &f in &h_eff[row..row + l2] {
                        field_sum += f;
                    }
                    let delta = -2.0 * s0 * k_cl * field_sum as f64;
                    let accept = if delta <= 0.0 {
                        certain || rng.next_f64() < gate
                    } else if delta + neg_ln_gate > FAST_REJECT_CUTOFF {
                        false
                    } else {
                        // log2-octave Metropolis filter (see the site sweep).
                        let r = rng.next_u64();
                        let lz = r.leading_zeros() as f64;
                        let t = log2_gate as f64 - delta * std::f64::consts::LOG2_E;
                        if t >= -lz {
                            true
                        } else if t <= -(lz + 1.0) {
                            false
                        } else {
                            (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < gate * exp_fast(-delta)
                        }
                    };
                    if accept {
                        // Every member carries the same spin s0, so one
                        // neighbor-row pass folds the whole segment in.
                        words[i] ^= mask;
                        let dw = -2.0 * s0 as f32;
                        let (cols, w32) = csr.row_f32(i);
                        for (&j, &w_ij) in cols.iter().zip(w32) {
                            let base = j as usize * p;
                            let wdw = w_ij * dw;
                            for f in &mut h_eff[base + lo..base + e1] {
                                *f += wdw;
                            }
                            for f in &mut h_eff[base..base + l2] {
                                *f += wdw;
                            }
                        }
                    }
                }
            }

            if self.global_moves {
                for i in 0..n {
                    let row = i * p;
                    let w = words[i];
                    let mut signed_sum = 0.0f64; // Σ_k s_ik · h_ik
                    for k in 0..p {
                        let sik = (2 * ((w >> k) & 1) as i32 - 1) as f64;
                        signed_sum += sik * h_eff[row + k] as f64;
                    }
                    let delta = -2.0 * k_cl * signed_sum;
                    let accept = if delta <= 0.0 {
                        certain || rng.next_f64() < gate
                    } else if delta + neg_ln_gate > FAST_REJECT_CUTOFF {
                        false
                    } else {
                        rng.next_f64() < gate * exp_fast(-delta)
                    };
                    if accept {
                        words[i] = !w & mask_p;
                        // Per-slice sign changes, folded into each neighbor
                        // row as one contiguous AXPY.
                        let mut ds = [0.0f32; 64];
                        for (k, slot) in ds[..p].iter_mut().enumerate() {
                            *slot = -2.0 * (2 * ((w >> k) & 1) as i32 - 1) as f32;
                        }
                        let (cols, w32) = csr.row_f32(i);
                        for (&j, &w_ij) in cols.iter().zip(w32) {
                            let base = j as usize * p;
                            for (k, &d) in ds[..p].iter().enumerate() {
                                h_eff[base + k] += w_ij * d;
                            }
                        }
                    }
                }
            }
        }

        // Majority-vote readout: popcount ≥ half the slices means up
        // (`2·count − p ≥ 0`, exactly the exact kernel's sum rule).
        words
            .iter()
            .map(|&w| {
                if 2 * w.count_ones() as usize >= p {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreezeOut;
    use hqw_qubo::solution::bits_to_spins;

    fn ferromagnet(n: usize) -> Ising {
        // All-ferromagnetic chain with a field pinning the ground state to
        // all-up: E(all +1) is the unique minimum.
        let mut ising = Ising::new(n);
        for i in 0..n {
            ising.set_h(i, -0.4);
            if i + 1 < n {
                ising.set_coupling(i, i + 1, -1.0);
            }
        }
        ising
    }

    #[test]
    fn j_perp_is_monotone_in_s() {
        let engine = PimcEngine::default();
        let profile = DWaveProfile::default();
        let beta = profile.beta();
        let mut prev = 0.0;
        for k in 0..=10 {
            let s = k as f64 / 10.0;
            let j = engine.j_perp(&profile, beta, s);
            assert!(j >= prev - 1e-12, "J⊥ not monotone at s={s}");
            assert!(j <= J_PERP_MAX);
            prev = j;
        }
        // Late anneal: effectively frozen (alignment penalty e^{−4·J⊥} < 10⁻¹⁷).
        assert!(engine.j_perp(&profile, beta, 1.0) >= 10.0);
    }

    #[test]
    fn forward_anneal_finds_ferromagnetic_ground_state() {
        let ising = ferromagnet(8);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(2.0).unwrap();
        let params = AnnealParams {
            sweeps_per_us: 64,
            beta_override: None,
            freeze_out: Some(FreezeOut::default()),
            ..Default::default()
        };
        let mut rng = Rng64::new(11);
        let mut hits = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, None, &mut rng);
            if out.iter().all(|&s| s == 1) {
                hits += 1;
            }
        }
        assert!(hits >= 8, "FA found the 8-spin ferromagnet {hits}/10 times");
    }

    #[test]
    fn reverse_anneal_at_high_sp_preserves_initial_state() {
        // s_p close to 1 re-opens almost no fluctuations: the programmed
        // state must survive (the paper's "s_p should not be too close to 1
        // … [or] too close to 0" trade-off, upper end). The all-down state
        // is a *local minimum* of the field-pinned-up ferromagnet, so only
        // genuine fluctuations — not plain downhill relaxation — can move it.
        let ising = ferromagnet(8);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.95, 0.2).unwrap();
        let params = AnnealParams::default();
        let init = bits_to_spins(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = Rng64::new(13);
        let mut preserved = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out == init {
                preserved += 1;
            }
        }
        assert!(
            preserved >= 8,
            "shallow RA should preserve the initial state, got {preserved}/10"
        );
    }

    #[test]
    fn reverse_anneal_at_low_sp_wipes_initial_state() {
        // s_p near 0 erases the initial information (the paper's lower end):
        // starting from the all-down state of a field-pinned-up ferromagnet,
        // deep reverse annealing should mostly recover all-up.
        let ising = ferromagnet(6);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.05, 1.0).unwrap();
        let params = AnnealParams {
            sweeps_per_us: 64,
            beta_override: None,
            freeze_out: Some(FreezeOut::default()),
            ..Default::default()
        };
        let init = vec![-1i8; 6];
        let mut rng = Rng64::new(17);
        let mut recovered = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out.iter().all(|&s| s == 1) {
                recovered += 1;
            }
        }
        assert!(
            recovered >= 7,
            "deep RA should escape the programmed excited state, got {recovered}/10"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ising = ferromagnet(6);
        let engine = PimcEngine::default();
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let params = AnnealParams::default();
        let a = engine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(5),
        );
        let b = engine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_problem_returns_empty_state() {
        let ising = Ising::new(0);
        let engine = PimcEngine::default();
        let out = engine.run(
            &ising,
            &DWaveProfile::default(),
            &AnnealSchedule::forward(1.0).unwrap(),
            &AnnealParams::default(),
            None,
            &mut Rng64::new(1),
        );
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 2 Trotter slices")]
    fn single_slice_rejected() {
        PimcEngine::new(1);
    }

    fn fast_params(sweeps_per_us: usize) -> AnnealParams {
        AnnealParams {
            sweeps_per_us,
            kernel: SweepKernel::Fast,
            ..Default::default()
        }
    }

    #[test]
    fn fast_kernel_finds_ferromagnetic_ground_state() {
        let ising = ferromagnet(8);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(2.0).unwrap();
        let params = fast_params(64);
        let mut rng = Rng64::new(41);
        let mut hits = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, None, &mut rng);
            if out.iter().all(|&s| s == 1) {
                hits += 1;
            }
        }
        assert!(hits >= 8, "Fast FA found the ferromagnet {hits}/10 times");
    }

    #[test]
    fn fast_kernel_preserves_shallow_reverse_anneal() {
        // The Fast kernel must keep the statistical behaviour the paper's
        // RA semantics rest on: a shallow reverse anneal from a local
        // minimum stays there.
        let ising = ferromagnet(8);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.95, 0.2).unwrap();
        let params = AnnealParams {
            kernel: SweepKernel::Fast,
            ..Default::default()
        };
        let init = bits_to_spins(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let mut rng = Rng64::new(43);
        let mut preserved = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out == init {
                preserved += 1;
            }
        }
        assert!(preserved >= 8, "Fast shallow RA preserved {preserved}/10");
    }

    #[test]
    fn fast_kernel_escapes_deep_reverse_anneal() {
        let ising = ferromagnet(6);
        let engine = PimcEngine::new(8);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::reverse(0.05, 1.0).unwrap();
        let params = fast_params(64);
        let init = vec![-1i8; 6];
        let mut rng = Rng64::new(47);
        let mut recovered = 0;
        for _ in 0..10 {
            let out = engine.run(&ising, &profile, &schedule, &params, Some(&init), &mut rng);
            if out.iter().all(|&s| s == 1) {
                recovered += 1;
            }
        }
        assert!(recovered >= 7, "Fast deep RA recovered {recovered}/10");
    }

    #[test]
    fn fast_kernel_is_deterministic_per_seed() {
        let ising = ferromagnet(6);
        let engine = PimcEngine::default();
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(1.0).unwrap();
        let params = fast_params(32);
        let a = engine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(53),
        );
        let b = engine.run(
            &ising,
            &profile,
            &schedule,
            &params,
            None,
            &mut Rng64::new(53),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fast_kernel_falls_back_to_exact_above_64_slices() {
        // A 65-slice worldline does not fit one u64; requesting Fast must
        // transparently run the Exact kernel (same RNG stream ⇒ identical
        // output for identical seeds).
        let ising = ferromagnet(5);
        let engine = PimcEngine::new(65);
        let profile = DWaveProfile::default();
        let schedule = AnnealSchedule::forward(0.5).unwrap();
        let fast = engine.run(
            &ising,
            &profile,
            &schedule,
            &fast_params(16),
            None,
            &mut Rng64::new(59),
        );
        let exact = engine.run(
            &ising,
            &profile,
            &schedule,
            &AnnealParams {
                sweeps_per_us: 16,
                ..Default::default()
            },
            None,
            &mut Rng64::new(59),
        );
        assert_eq!(fast, exact);
    }
}
