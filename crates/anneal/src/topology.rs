//! Chimera hardware topology (the D-Wave 2000Q's qubit graph).
//!
//! A Chimera graph `C_m` is an `m × m` grid of unit cells; each cell is a
//! complete bipartite `K_{4,4}` over 8 qubits. The 2000Q is `C_16` — 2048
//! qubits. Qubit indexing follows the D-Wave convention:
//!
//! ```text
//!   id = (row·m + col)·8 + k,   k ∈ 0..8
//! ```
//!
//! `k < 4` is the *vertical* shore (coupled to the cells above/below),
//! `k ≥ 4` the *horizontal* shore (coupled left/right). Intra-cell couplers
//! connect every vertical qubit to every horizontal qubit of the same cell;
//! inter-cell couplers connect same-`k` qubits of adjacent cells along the
//! shore's direction.
//!
//! Logical MIMO problems are dense, so they cannot be programmed directly;
//! [`crate::embedding`] maps them onto this graph with qubit chains.

/// A Chimera graph `C_m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chimera {
    m: usize,
}

/// Coordinates of one qubit: `(row, col, k)`.
pub type QubitCoord = (usize, usize, usize);

impl Chimera {
    /// Creates `C_m`.
    ///
    /// # Panics
    /// Panics when `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "Chimera: m must be positive");
        Chimera { m }
    }

    /// The D-Wave 2000Q topology, `C_16` (2048 qubits).
    pub fn dw2000q() -> Self {
        Chimera::new(16)
    }

    /// Grid dimension `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of qubits (`8·m²`).
    pub fn num_qubits(&self) -> usize {
        8 * self.m * self.m
    }

    /// Linear id of a qubit coordinate.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates.
    pub fn id(&self, (row, col, k): QubitCoord) -> usize {
        assert!(
            row < self.m && col < self.m && k < 8,
            "Chimera: bad coordinate"
        );
        (row * self.m + col) * 8 + k
    }

    /// Coordinate of a linear id.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn coord(&self, id: usize) -> QubitCoord {
        assert!(id < self.num_qubits(), "Chimera: id out of range");
        let k = id % 8;
        let cell = id / 8;
        (cell / self.m, cell % self.m, k)
    }

    /// True when two qubits are directly coupled.
    pub fn coupled(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let (ra, ca, ka) = self.coord(a);
        let (rb, cb, kb) = self.coord(b);
        // Intra-cell: same cell, opposite shores.
        if ra == rb && ca == cb {
            return (ka < 4) != (kb < 4);
        }
        // Inter-cell vertical: same column, adjacent rows, same k < 4.
        if ca == cb && ka == kb && ka < 4 && ra.abs_diff(rb) == 1 {
            return true;
        }
        // Inter-cell horizontal: same row, adjacent columns, same k ≥ 4.
        if ra == rb && ka == kb && ka >= 4 && ca.abs_diff(cb) == 1 {
            return true;
        }
        false
    }

    /// All neighbors of a qubit.
    pub fn neighbors(&self, id: usize) -> Vec<usize> {
        let (row, col, k) = self.coord(id);
        let mut out = Vec::with_capacity(6);
        // Opposite shore of the same cell.
        let shore = if k < 4 { 4..8 } else { 0..4 };
        for kk in shore {
            out.push(self.id((row, col, kk)));
        }
        if k < 4 {
            if row > 0 {
                out.push(self.id((row - 1, col, k)));
            }
            if row + 1 < self.m {
                out.push(self.id((row + 1, col, k)));
            }
        } else {
            if col > 0 {
                out.push(self.id((row, col - 1, k)));
            }
            if col + 1 < self.m {
                out.push(self.id((row, col + 1, k)));
            }
        }
        out
    }

    /// Total number of couplers.
    pub fn num_couplers(&self) -> usize {
        // 16 intra-cell per cell; 4 vertical per adjacent row pair per
        // column; 4 horizontal per adjacent column pair per row.
        16 * self.m * self.m + 2 * 4 * self.m * (self.m - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dw2000q_has_2048_qubits() {
        let c = Chimera::dw2000q();
        assert_eq!(c.num_qubits(), 2048);
        assert_eq!(c.m(), 16);
    }

    #[test]
    fn id_coord_round_trip() {
        let c = Chimera::new(4);
        for id in 0..c.num_qubits() {
            assert_eq!(c.id(c.coord(id)), id);
        }
    }

    #[test]
    fn intra_cell_is_complete_bipartite() {
        let c = Chimera::new(2);
        for kv in 0..4 {
            for kh in 4..8 {
                assert!(c.coupled(c.id((1, 1, kv)), c.id((1, 1, kh))));
            }
        }
        // Same shore is not coupled.
        assert!(!c.coupled(c.id((0, 0, 0)), c.id((0, 0, 1))));
        assert!(!c.coupled(c.id((0, 0, 4)), c.id((0, 0, 5))));
    }

    #[test]
    fn inter_cell_couplers_follow_shores() {
        let c = Chimera::new(3);
        // Vertical shore couples across rows.
        assert!(c.coupled(c.id((0, 1, 2)), c.id((1, 1, 2))));
        assert!(!c.coupled(c.id((0, 1, 2)), c.id((2, 1, 2)))); // not adjacent
        assert!(!c.coupled(c.id((0, 1, 2)), c.id((1, 1, 3)))); // different k
                                                               // Horizontal shore couples across columns.
        assert!(c.coupled(c.id((1, 0, 6)), c.id((1, 1, 6))));
        assert!(!c.coupled(c.id((1, 0, 6)), c.id((0, 1, 6))));
        // Vertical qubits do not couple across columns.
        assert!(!c.coupled(c.id((0, 0, 0)), c.id((0, 1, 0))));
    }

    #[test]
    fn neighbor_lists_match_coupled_predicate() {
        let c = Chimera::new(3);
        for id in 0..c.num_qubits() {
            let neigh = c.neighbors(id);
            for &other in &neigh {
                assert!(c.coupled(id, other), "{id} ↔ {other}");
            }
            // Count cross-check against brute force.
            let brute = (0..c.num_qubits()).filter(|&o| c.coupled(id, o)).count();
            assert_eq!(neigh.len(), brute, "qubit {id}");
        }
    }

    #[test]
    fn coupler_count_formula_matches_enumeration() {
        for m in 1..=4 {
            let c = Chimera::new(m);
            let mut count = 0;
            for a in 0..c.num_qubits() {
                for b in a + 1..c.num_qubits() {
                    if c.coupled(a, b) {
                        count += 1;
                    }
                }
            }
            assert_eq!(count, c.num_couplers(), "m={m}");
        }
    }

    #[test]
    fn corner_qubits_have_reduced_degree() {
        let c = Chimera::new(2);
        // A vertical qubit in the corner cell has 4 intra + 1 inter = 5.
        assert_eq!(c.neighbors(c.id((0, 0, 0))).len(), 5);
        // An interior-column horizontal qubit in C2 has 4 intra + 1 inter.
        assert_eq!(c.neighbors(c.id((0, 0, 4))).len(), 5);
    }
}
