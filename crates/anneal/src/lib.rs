//! # hqw-anneal — quantum annealer simulator substrate
//!
//! The paper prototypes on a D-Wave 2000Q, hardware this reproduction does
//! not have; per the substitution plan in `DESIGN.md`, this crate implements
//! a **simulated analog quantum annealer** exposing the same programming
//! surface the paper used:
//!
//! * [`schedule`] — piecewise-linear `[time µs, s]` anneal schedules with
//!   §4.1's exact FA / RA / FR constructors (Figure 5).
//! * [`dwave`] — 2000Q-like `A(s)`/`B(s)` energy scales and operating
//!   temperature.
//! * [`engine`] / [`pimc`] / [`svmc`] — the Monte-Carlo engines that execute
//!   a schedule: path-integral (Trotterized) quantum Monte Carlo and
//!   semi-classical spin-vector Monte Carlo.
//! * [`noise`] — analog coefficient noise (ICE), the failure mode behind
//!   §3.1's soft-information finding.
//! * [`topology`] / [`embedding`] — the Chimera C16 hardware graph and the
//!   clique minor-embedding ("compilation") with chain-break resolution.
//! * [`sampler`] — the D-Wave-style front end: `num_reads`, schedules,
//!   reverse-anneal initial states, auto-scaling, parallel reads and QPU
//!   time accounting.
//! * [`cache`] — the embedding cache: memoized clique embeddings keyed by
//!   (topology, logical size), so streaming workloads that re-solve
//!   same-shape QUBOs never re-derive chains.
//!
//! Everything is deterministic from a seed, including multi-threaded
//! sampling.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dwave;
pub mod embedding;
pub mod engine;
pub mod noise;
pub mod pimc;
pub mod sampler;
pub mod schedule;
pub mod svmc;
pub mod topology;

pub use cache::EmbeddingCache;
pub use dwave::DWaveProfile;
pub use embedding::{ChainStrength, CliqueEmbedding};
pub use engine::{AnnealEngine, AnnealParams};
pub use noise::IceModel;
pub use pimc::PimcEngine;
pub use sampler::{AnnealResult, ConfigError, EngineKind, QuantumSampler, SamplerConfig};
pub use schedule::AnnealSchedule;
pub use svmc::SvmcEngine;
pub use topology::Chimera;
