//! Minor embedding of dense (clique) problems onto Chimera hardware.
//!
//! MIMO-detection QUBOs are fully connected, but Chimera qubits have degree
//! ≤ 6, so each *logical* variable must be represented by a *chain* of
//! physical qubits bound together by strong ferromagnetic couplers — the
//! "compilation" step of the paper's QuAMax pipeline ("the compilation
//! parameters are standard and have not been tailored").
//!
//! The clique embedding used here is the cross construction: logical
//! variable `ℓ = 4a + b` (cell-row `a`, shore line `b`) occupies
//!
//! * the horizontal line `b` across all cells of cell-row `a`, and
//! * the vertical line `b` across all cells of cell-column `a`.
//!
//! Chains are connected (the two lines meet in diagonal cell `(a, a)`,
//! where the shores couple), pairwise disjoint, and every pair of chains
//! meets in exactly the cell where one's row crosses the other's column —
//! so `K_{4m}` embeds in `C_m` with chains of length `2m`. (D-Wave's
//! production embedding reaches `K_{4m+1}` with chains of `m+1` using a
//! triangular construction; the cross form trades qubit count for
//! simplicity and is bit-for-bit verifiable, which we favor here.)
//!
//! Unembedding resolves broken chains (chains whose qubits disagree) by
//! majority vote, the standard post-processing default.

use crate::topology::Chimera;
use hqw_math::Rng64;
use hqw_qubo::Ising;

/// Chain-strength policy for binding chain qubits.
#[derive(Debug, Clone, Copy)]
pub enum ChainStrength {
    /// Use exactly this ferromagnetic magnitude.
    Fixed(f64),
    /// `factor × max(max|h|, max|J|)` of the logical problem (≥ a small
    /// floor so zero problems still bind). A factor near 1–2 is the usual
    /// starting point.
    RelativeToMax(f64),
}

impl ChainStrength {
    fn resolve(&self, logical: &Ising) -> f64 {
        match *self {
            ChainStrength::Fixed(v) => {
                assert!(v > 0.0, "ChainStrength::Fixed must be positive");
                v
            }
            ChainStrength::RelativeToMax(factor) => {
                assert!(factor > 0.0, "ChainStrength factor must be positive");
                let scale = f64::max(logical.max_abs_h(), logical.max_abs_j()).max(1e-9);
                factor * scale
            }
        }
    }
}

/// A clique minor-embedding on a Chimera graph.
#[derive(Debug, Clone)]
pub struct CliqueEmbedding {
    graph: Chimera,
    /// `chains[ℓ]` = physical qubit ids representing logical variable `ℓ`.
    chains: Vec<Vec<usize>>,
    /// Physical edges within each chain (the binding couplers).
    chain_edges: Vec<Vec<(usize, usize)>>,
    /// For each logical pair `(i, j)`, i < j: the physical couplers between
    /// chain i and chain j.
    cross_couplers: Vec<Vec<Vec<(usize, usize)>>>,
}

impl CliqueEmbedding {
    /// Builds the cross clique embedding of `n_logical ≤ 4m` variables on
    /// `C_m`.
    ///
    /// # Panics
    /// Panics when `n_logical` is zero or exceeds `4·m`.
    pub fn new(graph: Chimera, n_logical: usize) -> Self {
        let m = graph.m();
        assert!(n_logical > 0, "CliqueEmbedding: need at least one variable");
        assert!(
            n_logical <= 4 * m,
            "CliqueEmbedding: {n_logical} logical variables exceed K_{} on C_{m}",
            4 * m
        );

        let mut chains = Vec::with_capacity(n_logical);
        let mut chain_edges = Vec::with_capacity(n_logical);
        for l in 0..n_logical {
            let a = l / 4;
            let b = l % 4;
            let mut chain = Vec::with_capacity(2 * m);
            let mut edges = Vec::new();
            // Horizontal line: row a, shore qubit 4+b, all columns.
            for col in 0..m {
                chain.push(graph.id((a, col, 4 + b)));
                if col > 0 {
                    edges.push((graph.id((a, col - 1, 4 + b)), graph.id((a, col, 4 + b))));
                }
            }
            // Vertical line: column a, shore qubit b, all rows.
            for row in 0..m {
                chain.push(graph.id((row, a, b)));
                if row > 0 {
                    edges.push((graph.id((row - 1, a, b)), graph.id((row, a, b))));
                }
            }
            // The two lines meet in cell (a, a): intra-cell coupler.
            edges.push((graph.id((a, a, 4 + b)), graph.id((a, a, b))));
            chains.push(chain);
            chain_edges.push(edges);
        }

        // Cross couplers: chain i's vertical line passes through cell
        // (a_j, a_i); chain j's horizontal line passes through the same cell.
        let mut cross = vec![vec![Vec::new(); n_logical]; n_logical];
        for i in 0..n_logical {
            let (ai, bi) = (i / 4, i % 4);
            for j in 0..n_logical {
                if i == j {
                    continue;
                }
                let (aj, bj) = (j / 4, j % 4);
                // Vertical qubit of i in cell (aj, ai) ↔ horizontal qubit of
                // j in cell (aj, ai).
                let v = graph.id((aj, ai, bi));
                let h = graph.id((aj, ai, 4 + bj));
                debug_assert!(graph.coupled(v, h));
                cross[i.min(j)][i.max(j)].push((v, h));
            }
        }

        CliqueEmbedding {
            graph,
            chains,
            chain_edges,
            cross_couplers: cross,
        }
    }

    /// Largest clique this Chimera size supports with this construction.
    pub fn max_clique(graph: &Chimera) -> usize {
        4 * graph.m()
    }

    /// The physical chain of a logical variable.
    pub fn chain(&self, logical: usize) -> &[usize] {
        &self.chains[logical]
    }

    /// Number of logical variables.
    pub fn num_logical(&self) -> usize {
        self.chains.len()
    }

    /// Total physical qubits used.
    pub fn qubits_used(&self) -> usize {
        self.chains.iter().map(|c| c.len()).sum()
    }

    /// Embeds a logical Ising problem into a physical one on the hardware
    /// graph: fields split evenly over chain qubits, logical couplings split
    /// evenly over the available cross couplers, chains bound with
    /// ferromagnetic `−strength`.
    ///
    /// # Panics
    /// Panics when the logical problem size mismatches the embedding.
    pub fn embed(&self, logical: &Ising, strength: ChainStrength) -> Ising {
        let n = self.num_logical();
        assert_eq!(
            logical.num_vars(),
            n,
            "embed: logical problem size mismatch"
        );
        let binding = strength.resolve(logical);
        let mut physical = Ising::new(self.graph.num_qubits());

        for l in 0..n {
            let chain = &self.chains[l];
            let h_per_qubit = logical.h(l) / chain.len() as f64;
            for &q in chain {
                physical.add_h(q, h_per_qubit);
            }
            for &(a, b) in &self.chain_edges[l] {
                physical.add_coupling(a, b, -binding);
            }
        }
        for &(i, j, jij) in logical.edges() {
            let couplers = &self.cross_couplers[i.min(j)][i.max(j)];
            assert!(!couplers.is_empty(), "no cross coupler for ({i},{j})");
            let per = jij / couplers.len() as f64;
            for &(a, b) in couplers {
                physical.add_coupling(a, b, per);
            }
        }
        physical
    }

    /// Unembeds a physical state into logical spins by per-chain majority
    /// vote (ties break to +1). Returns `(logical spins, broken chain count)`.
    ///
    /// # Panics
    /// Panics when the state length mismatches the hardware size.
    pub fn unembed(&self, physical: &[i8]) -> (Vec<i8>, usize) {
        assert_eq!(
            physical.len(),
            self.graph.num_qubits(),
            "unembed: state length mismatch"
        );
        let mut broken = 0;
        let logical = self
            .chains
            .iter()
            .map(|chain| {
                let sum: i32 = chain.iter().map(|&q| physical[q] as i32).sum();
                if sum.unsigned_abs() as usize != chain.len() {
                    broken += 1;
                }
                if sum >= 0 {
                    1
                } else {
                    -1
                }
            })
            .collect();
        (logical, broken)
    }

    /// Expands a logical state to a chain-consistent physical state (used to
    /// program reverse-anneal initial states through the embedding).
    pub fn embed_state(&self, logical: &[i8], rng: &mut Rng64) -> Vec<i8> {
        assert_eq!(self.num_logical(), logical.len(), "embed_state: length");
        // Unused qubits get random spins (they are uncoupled in `embed`).
        let mut physical: Vec<i8> = (0..self.graph.num_qubits())
            .map(|_| if rng.next_bool() { 1 } else { -1 })
            .collect();
        for (l, chain) in self.chains.iter().enumerate() {
            for &q in chain {
                physical[q] = logical[l];
            }
        }
        physical
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_qubo::generator::random_qubo;
    use hqw_qubo::solution::bits_to_spins;

    #[test]
    fn chains_are_disjoint_and_connected() {
        let graph = Chimera::new(3);
        let emb = CliqueEmbedding::new(graph, 12);
        // Disjoint.
        let mut seen = std::collections::HashSet::new();
        for l in 0..12 {
            for &q in emb.chain(l) {
                assert!(seen.insert(q), "qubit {q} reused");
            }
        }
        // Connected: BFS over hardware couplers restricted to the chain.
        for l in 0..12 {
            let chain: std::collections::HashSet<usize> = emb.chain(l).iter().copied().collect();
            let start = emb.chain(l)[0];
            let mut visited = std::collections::HashSet::from([start]);
            let mut frontier = vec![start];
            while let Some(q) = frontier.pop() {
                for nb in graph.neighbors(q) {
                    if chain.contains(&nb) && visited.insert(nb) {
                        frontier.push(nb);
                    }
                }
            }
            assert_eq!(visited.len(), chain.len(), "chain {l} disconnected");
        }
    }

    #[test]
    fn every_logical_pair_has_a_physical_coupler() {
        let graph = Chimera::new(3);
        let emb = CliqueEmbedding::new(graph, 12);
        for i in 0..12 {
            for j in i + 1..12 {
                assert!(
                    !emb.cross_couplers[i][j].is_empty(),
                    "pair ({i},{j}) has no coupler"
                );
                for &(a, b) in &emb.cross_couplers[i][j] {
                    assert!(graph.coupled(a, b), "({a},{b}) is not a hardware coupler");
                }
            }
        }
    }

    #[test]
    fn embedded_energy_matches_logical_on_chain_consistent_states() {
        // For any chain-consistent physical state: physical energy =
        // logical energy + constant (the chain-binding energy, which is the
        // same for every consistent state).
        let graph = Chimera::new(2);
        let n = 8;
        let mut rng = Rng64::new(7);
        let q = random_qubo(n, &mut rng);
        let (logical, _) = q.to_ising();
        let emb = CliqueEmbedding::new(graph, n);
        let physical = emb.embed(&logical, ChainStrength::RelativeToMax(2.0));

        // Fix unused qubits to +1 so the (zero-weight) unused terms agree.
        let consistent = |spins: &[i8]| -> Vec<i8> {
            let mut phys = vec![1i8; graph.num_qubits()];
            for (l, chain) in (0..n).map(|l| (l, emb.chain(l))) {
                for &qbit in chain {
                    phys[qbit] = spins[l];
                }
            }
            phys
        };

        let all_up = consistent(&vec![1i8; n]);
        let base_shift = physical.energy(&all_up) - logical.energy(&vec![1i8; n]);
        for _ in 0..10 {
            let bits: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
            let spins = bits_to_spins(&bits);
            let phys = consistent(&spins);
            let diff = physical.energy(&phys) - logical.energy(&spins);
            assert!(
                (diff - base_shift).abs() < 1e-9,
                "chain-consistent energies differ: {diff} vs {base_shift}"
            );
        }
    }

    #[test]
    fn unembed_majority_vote_and_break_count() {
        let graph = Chimera::new(2);
        let emb = CliqueEmbedding::new(graph, 4);
        let mut rng = Rng64::new(9);
        let logical = vec![1i8, -1, 1, -1];
        let mut physical = emb.embed_state(&logical, &mut rng);
        let (out, broken) = emb.unembed(&physical);
        assert_eq!(out, logical);
        assert_eq!(broken, 0);

        // Break one chain minimally: flip a single qubit of chain 0.
        physical[emb.chain(0)[0]] = -1;
        let (out2, broken2) = emb.unembed(&physical);
        assert_eq!(broken2, 1);
        assert_eq!(out2[0], 1, "majority should still win");
    }

    #[test]
    fn dw2000q_supports_64_logical_variables() {
        let graph = Chimera::dw2000q();
        assert_eq!(CliqueEmbedding::max_clique(&graph), 64);
        let emb = CliqueEmbedding::new(graph, 64);
        assert_eq!(emb.qubits_used(), 64 * 32);
        // Chain length 2m = 32 on C16.
        assert_eq!(emb.chain(0).len(), 32);
    }

    #[test]
    #[should_panic(expected = "exceed K_8")]
    fn oversized_clique_rejected() {
        CliqueEmbedding::new(Chimera::new(2), 9);
    }
}
