//! Property-based tests for the annealer substrate.

use hqw_anneal::cache::EmbeddingCache;
use hqw_anneal::embedding::{ChainStrength, CliqueEmbedding};
use hqw_anneal::engine::{AnnealParams, FreezeOut};
use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
use hqw_anneal::schedule::AnnealSchedule;
use hqw_anneal::topology::Chimera;
use hqw_anneal::DWaveProfile;
use hqw_math::Rng64;
use hqw_qubo::generator::random_qubo;
use hqw_qubo::solution::bits_to_spins;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ra_schedules_satisfy_paper_identities(s_p in 0.01f64..0.99, t_p in 0.0f64..4.0) {
        let sched = AnnealSchedule::reverse(s_p, t_p).unwrap();
        // Duration identity from §4.1: 2(1−s_p) + t_p.
        prop_assert!((sched.duration_us() - (2.0 * (1.0 - s_p) + t_p)).abs() < 1e-9);
        prop_assert!(sched.requires_initial_state());
        prop_assert!((sched.min_s() - s_p).abs() < 1e-9);
        // s(t) stays within [s_p, 1].
        for k in 0..=20 {
            let t = sched.duration_us() * k as f64 / 20.0;
            let s = sched.s_at(t);
            prop_assert!(s >= s_p - 1e-9 && s <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fa_pause_schedules_are_monotone_outside_the_pause(
        s_p in 0.05f64..0.95, t_p in 0.0f64..3.0, extra in 0.05f64..2.0
    ) {
        let t_a = s_p + extra;
        let sched = AnnealSchedule::forward_with_pause(s_p, t_p, t_a).unwrap();
        prop_assert!((sched.duration_us() - (t_a + t_p)).abs() < 1e-9);
        // s is non-decreasing for forward schedules.
        let mut prev = -1.0;
        for k in 0..=40 {
            let t = sched.duration_us() * k as f64 / 40.0;
            let s = sched.s_at(t);
            prop_assert!(s >= prev - 1e-9, "s(t) decreased on a forward schedule");
            prev = s;
        }
    }

    #[test]
    fn fr_schedules_touch_cp_then_sp(
        s_p in 0.05f64..0.8, d in 0.05f64..0.19, t_p in 0.0f64..2.0
    ) {
        let c_p = (s_p + d).min(0.99);
        prop_assume!(c_p > s_p && c_p < 1.0);
        let t_a = s_p + 1.0;
        let sched = AnnealSchedule::forward_reverse(c_p, s_p, t_p, t_a).unwrap();
        prop_assert!((sched.s_at(c_p) - c_p).abs() < 1e-9, "peak misses c_p");
        prop_assert!((sched.s_at(2.0 * c_p - s_p) - s_p).abs() < 1e-9, "valley misses s_p");
        prop_assert!(!sched.requires_initial_state());
    }

    #[test]
    fn freeze_gate_is_monotone_and_bounded(a_ref in 0.1f64..5.0, exp in 0.2f64..4.0) {
        let gate = FreezeOut { a_ref_ghz: a_ref, exponent: exp };
        let mut prev = 0.0;
        for k in 0..=20 {
            let a = k as f64 * 0.5;
            let g = gate.gate(a);
            prop_assert!((0.0..=1.0).contains(&g));
            prop_assert!(g >= prev - 1e-12, "gate not monotone in A");
            prev = g;
        }
        prop_assert_eq!(gate.gate(0.0), 0.0);
        prop_assert_eq!(gate.gate(a_ref * 2.0), 1.0);
    }

    #[test]
    fn chimera_ids_and_coords_are_bijective(m in 1usize..6) {
        let c = Chimera::new(m);
        for id in (0..c.num_qubits()).step_by(7) {
            prop_assert_eq!(c.id(c.coord(id)), id);
        }
        // Coupling is symmetric.
        let mut rng = Rng64::new(m as u64);
        for _ in 0..16 {
            let a = rng.next_index(c.num_qubits());
            let b = rng.next_index(c.num_qubits());
            prop_assert_eq!(c.coupled(a, b), c.coupled(b, a));
        }
    }

    #[test]
    fn embedding_round_trips_arbitrary_logical_states(
        m in 1usize..4, seed in any::<u64>()
    ) {
        let graph = Chimera::new(m);
        let n = 4 * m;
        let emb = CliqueEmbedding::new(graph, n);
        let mut rng = Rng64::new(seed);
        let logical: Vec<i8> = (0..n).map(|_| if rng.next_bool() { 1 } else { -1 }).collect();
        let physical = emb.embed_state(&logical, &mut rng);
        let (back, broken) = emb.unembed(&physical);
        prop_assert_eq!(back, logical);
        prop_assert_eq!(broken, 0);
    }

    #[test]
    fn cached_embeddings_are_identical_to_fresh_derivations(
        m in 1usize..4, seed in any::<u64>()
    ) {
        // The fabric's embedding cache must be a pure memoization: a cached
        // embedding is indistinguishable from a fresh derivation — same
        // chains, and the same embedded physical problem.
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.next_index(4 * m);
        let mut cache = EmbeddingCache::new();
        let first = cache.get(Chimera::new(m), n);
        let cached = cache.get(Chimera::new(m), n);
        prop_assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let fresh = CliqueEmbedding::new(Chimera::new(m), n);
        for l in 0..n {
            prop_assert_eq!(first.chain(l), fresh.chain(l));
            prop_assert_eq!(cached.chain(l), fresh.chain(l));
        }
        prop_assert_eq!(cached.qubits_used(), fresh.qubits_used());

        // Same embedded problem: identical physical energies everywhere we
        // probe.
        let q = random_qubo(n, &mut rng);
        let (logical, _) = q.to_ising();
        let strength = ChainStrength::RelativeToMax(2.0);
        let from_cache = cached.embed(&logical, strength);
        let from_fresh = fresh.embed(&logical, strength);
        for _ in 0..4 {
            let state: Vec<i8> = (0..from_fresh.num_vars())
                .map(|_| if rng.next_bool() { 1 } else { -1 })
                .collect();
            prop_assert_eq!(
                from_cache.energy(&state).to_bits(),
                from_fresh.energy(&state).to_bits()
            );
        }
    }

    #[test]
    fn cached_partial_clique_embeddings_round_trip_states(
        m in 1usize..4, seed in any::<u64>()
    ) {
        // embed_state → unembed through a *cached* embedding of a partial
        // clique (n ≤ 4m) recovers the logical state with zero broken
        // chains — the invariant the mock-QPU backend's reverse-anneal
        // programming relies on.
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.next_index(4 * m);
        let mut cache = EmbeddingCache::new();
        let emb = cache.get(Chimera::new(m), n);
        let logical: Vec<i8> = (0..n).map(|_| if rng.next_bool() { 1 } else { -1 }).collect();
        let physical = emb.embed_state(&logical, &mut rng);
        let (back, broken) = emb.unembed(&physical);
        prop_assert_eq!(back, logical);
        prop_assert_eq!(broken, 0);
    }

    #[test]
    fn sampler_is_deterministic_and_thread_invariant(
        seed in any::<u64>(), n in 2usize..10, reads in 1usize..12
    ) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let schedule = AnnealSchedule::forward(0.5).unwrap();
        let mk = |threads| QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: reads,
                engine: EngineKind::Pimc { trotter_slices: 4 },
                params: AnnealParams { sweeps_per_us: 8, ..Default::default() },
                threads,
                ..Default::default()
            },
        );
        let a = mk(1).sample_qubo(&q, &schedule, None, seed);
        let b = mk(2).sample_qubo(&q, &schedule, None, seed);
        let av: Vec<_> = a.samples.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
        let bv: Vec<_> = b.samples.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
        prop_assert_eq!(av, bv);
    }

    #[test]
    fn reverse_reads_report_consistent_energies(seed in any::<u64>(), n in 2usize..8) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let init: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
        let sampler = QuantumSampler::new(
            DWaveProfile::calibrated(),
            SamplerConfig {
                num_reads: 6,
                engine: EngineKind::Pimc { trotter_slices: 4 },
                params: AnnealParams { sweeps_per_us: 8, ..Default::default() },
                ..Default::default()
            },
        );
        let schedule = AnnealSchedule::reverse(0.6, 0.5).unwrap();
        let out = sampler.sample_qubo(&q, &schedule, Some(&init), seed);
        for s in out.samples.iter() {
            prop_assert!((q.energy(&s.bits) - s.energy).abs() < 1e-9);
            prop_assert_eq!(s.bits.len(), n);
        }
        prop_assert_eq!(out.samples.total_reads(), 6);
        // Spin view of the initial state is well-formed.
        let spins = bits_to_spins(&init);
        prop_assert!(spins.iter().all(|&s| s == 1 || s == -1));
    }

    #[test]
    fn cached_fields_hold_on_embedded_hardware_graphs(
        seed in any::<u64>(), m in 1usize..4
    ) {
        // The engines' per-replica caches rest on the CSR local-field
        // invariant; exercise it on the physical (Chimera-embedded, chained)
        // problems the annealer actually sweeps, after long random flip
        // sequences.
        let n = 4 * m;
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let (logical, _) = q.to_ising();
        let emb = CliqueEmbedding::new(Chimera::new(m), n);
        let physical = emb.embed(&logical, hqw_anneal::embedding::ChainStrength::RelativeToMax(2.0));
        let csr = hqw_qubo::CsrIsing::from_ising(&physical);
        let nq = csr.num_vars();
        let start: Vec<i8> =
            (0..nq).map(|_| if rng.next_bool() { 1 } else { -1 }).collect();
        let mut state = hqw_qubo::LocalFieldState::new(&csr, start);
        for _ in 0..300 {
            let k = rng.next_index(nq);
            let exact = csr.flip_delta(state.spins(), k);
            prop_assert!((state.flip_delta(k) - exact).abs()
                < 1e-9 * (1.0 + exact.abs()));
            state.flip(&csr, k);
        }
        prop_assert!(state.max_field_error(&csr) < 1e-8, "h_eff drifted on hardware graph");
        prop_assert!((state.energy() - physical.energy(state.spins())).abs()
            < 1e-8 * (1.0 + state.energy().abs()));
    }

    #[test]
    fn engines_are_deterministic_on_reverse_schedules(
        seed in any::<u64>(), n in 2usize..8
    ) {
        // The incremental per-slice caches must not introduce any hidden
        // state: identical seeds give identical reads, for both engines and
        // for reverse (initial-state-programmed) schedules.
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let init: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
        let schedule = AnnealSchedule::reverse(0.6, 0.4).unwrap();
        for engine in [EngineKind::Pimc { trotter_slices: 4 }, EngineKind::Svmc] {
            let mk = || QuantumSampler::new(
                DWaveProfile::calibrated(),
                SamplerConfig {
                    num_reads: 4,
                    engine,
                    params: AnnealParams { sweeps_per_us: 8, ..Default::default() },
                    threads: 1,
                    ..Default::default()
                },
            );
            let a = mk().sample_qubo(&q, &schedule, Some(&init), seed);
            let b = mk().sample_qubo(&q, &schedule, Some(&init), seed);
            let av: Vec<_> = a.samples.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
            let bv: Vec<_> = b.samples.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
            prop_assert_eq!(av, bv);
        }
    }
}
