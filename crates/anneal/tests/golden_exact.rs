//! Golden-output regression for the `Exact` PIMC / SVMC engine kernels.
//!
//! Captured from the pre-optimization engines. The `Exact` kernel mode
//! (the default) promises byte-identical readouts across implementation
//! changes: buffer hoisting, vectorized field updates and storage changes
//! must not alter a single RNG draw or float operation. The `Fast` mode is
//! exempt (statistical equivalence only).

use hqw_anneal::{
    AnnealEngine, AnnealParams, AnnealSchedule, DWaveProfile, PimcEngine, SvmcEngine,
};
use hqw_math::Rng64;
use hqw_qubo::generator::random_qubo;
use hqw_qubo::Ising;

fn problem() -> Ising {
    let q = random_qubo(16, &mut Rng64::new(55));
    q.to_ising().0
}

fn init16() -> Vec<i8> {
    (0..16).map(|i| if i % 3 == 0 { 1 } else { -1 }).collect()
}

#[test]
fn pimc_forward_golden() {
    let out = PimcEngine::new(8).run(
        &problem(),
        &DWaveProfile::calibrated(),
        &AnnealSchedule::forward(1.0).unwrap(),
        &AnnealParams::default(),
        None,
        &mut Rng64::new(101),
    );
    assert_eq!(
        out,
        vec![1, -1, -1, -1, -1, -1, 1, 1, 1, 1, 1, 1, -1, 1, 1, 1],
        "Exact PIMC forward anneal drifted from the pre-change golden"
    );
}

#[test]
fn pimc_reverse_golden() {
    let out = PimcEngine::new(8).run(
        &problem(),
        &DWaveProfile::calibrated(),
        &AnnealSchedule::reverse(0.69, 1.0).unwrap(),
        &AnnealParams::default(),
        Some(&init16()),
        &mut Rng64::new(103),
    );
    assert_eq!(
        out,
        vec![-1, -1, -1, 1, -1, 1, -1, -1, 1, -1, -1, -1, 1, 1, -1, -1],
        "Exact PIMC reverse anneal drifted from the pre-change golden"
    );
}

#[test]
fn pimc_reverse_with_global_moves_golden() {
    let engine = PimcEngine {
        trotter_slices: 8,
        global_moves: true,
        cluster_moves: true,
    };
    let out = engine.run(
        &problem(),
        &DWaveProfile::calibrated(),
        &AnnealSchedule::reverse(0.69, 1.0).unwrap(),
        &AnnealParams::default(),
        Some(&init16()),
        &mut Rng64::new(107),
    );
    assert_eq!(
        out,
        vec![1, -1, -1, -1, -1, -1, 1, -1, -1, 1, 1, 1, -1, 1, 1, 1],
        "Exact PIMC global-move path drifted from the pre-change golden"
    );
}

#[test]
fn pimc_reverse_without_cluster_moves_golden() {
    let engine = PimcEngine {
        trotter_slices: 8,
        global_moves: false,
        cluster_moves: false,
    };
    let out = engine.run(
        &problem(),
        &DWaveProfile::calibrated(),
        &AnnealSchedule::reverse(0.69, 1.0).unwrap(),
        &AnnealParams::default(),
        Some(&init16()),
        &mut Rng64::new(109),
    );
    assert_eq!(
        out,
        vec![-1, -1, -1, -1, -1, -1, 1, -1, -1, 1, 1, -1, 1, 1, -1, -1],
        "Exact PIMC single-site path drifted from the pre-change golden"
    );
}

#[test]
fn svmc_forward_golden() {
    let out = SvmcEngine.run(
        &problem(),
        &DWaveProfile::calibrated(),
        &AnnealSchedule::forward(1.0).unwrap(),
        &AnnealParams::default(),
        None,
        &mut Rng64::new(113),
    );
    assert_eq!(
        out,
        vec![1, -1, -1, -1, -1, -1, 1, 1, 1, -1, 1, 1, -1, 1, 1, 1],
        "Exact SVMC forward anneal drifted from the pre-change golden"
    );
}

#[test]
fn svmc_reverse_golden() {
    let out = SvmcEngine.run(
        &problem(),
        &DWaveProfile::calibrated(),
        &AnnealSchedule::reverse(0.69, 1.0).unwrap(),
        &AnnealParams::default(),
        Some(&init16()),
        &mut Rng64::new(127),
    );
    assert_eq!(
        out,
        vec![1, -1, -1, 1, -1, -1, 1, -1, -1, 1, -1, -1, -1, -1, -1, 1],
        "Exact SVMC reverse anneal drifted from the pre-change golden"
    );
}

#[test]
fn sampler_end_to_end_golden() {
    use hqw_anneal::sampler::{EngineKind, QuantumSampler, SamplerConfig};
    let q = random_qubo(16, &mut Rng64::new(55));
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 6,
            engine: EngineKind::Pimc { trotter_slices: 8 },
            threads: 1,
            ..Default::default()
        },
    );
    let res = sampler.sample_qubo(&q, &AnnealSchedule::forward(1.0).unwrap(), None, 31);
    let samples: Vec<(Vec<u8>, u64, u64)> = res
        .samples
        .iter()
        .map(|s| (s.bits.clone(), s.energy.to_bits(), s.occurrences))
        .collect();
    assert_eq!(
        samples,
        vec![(
            vec![1, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 1, 1, 1],
            0xc02102addc9df5d0,
            6,
        )],
        "Exact sampler pipeline drifted from the pre-change golden"
    );
}
