//! Wireless channel synthesis and noise injection.
//!
//! The paper's evaluation channel (§4.2) is "unit gain … with random phase":
//! every entry of `H` is `e^{jθ}`, `θ ~ U[0, 2π)`, and **no AWGN** is added
//! (the QUBO ground state is then exactly the transmitted symbol vector,
//! which is what makes success probabilities measurable without search).
//! Rayleigh fading and AWGN are provided for the extension experiments.

use hqw_math::{CMatrix, CVector, Complex64, Rng64};

/// Channel matrix models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelModel {
    /// `H_ij = e^{jθ_ij}` with i.i.d. uniform phases — the paper's model.
    UnitGainRandomPhase,
    /// i.i.d. circularly-symmetric complex Gaussian entries,
    /// `CN(0, 1)` (Rayleigh-fading magnitudes).
    RayleighIid,
    /// The identity channel (needs `n_rx == n_tx`); for calibration tests.
    Identity,
}

impl ChannelModel {
    /// Stable machine-readable name (used in scenario reports).
    pub fn name(self) -> &'static str {
        match self {
            ChannelModel::UnitGainRandomPhase => "unit-gain-random-phase",
            ChannelModel::RayleighIid => "rayleigh-iid",
            ChannelModel::Identity => "identity",
        }
    }

    /// Draws an `n_rx × n_tx` channel matrix.
    ///
    /// # Panics
    /// Panics for [`ChannelModel::Identity`] when `n_rx != n_tx`.
    pub fn generate(self, n_rx: usize, n_tx: usize, rng: &mut Rng64) -> CMatrix {
        match self {
            ChannelModel::UnitGainRandomPhase => CMatrix::from_fn(n_rx, n_tx, |_, _| {
                Complex64::from_polar(1.0, rng.next_range(0.0, std::f64::consts::TAU))
            }),
            ChannelModel::RayleighIid => CMatrix::from_fn(n_rx, n_tx, |_, _| {
                // CN(0,1): each component N(0, 1/2).
                let sigma = (0.5f64).sqrt();
                Complex64::new(
                    rng.next_gaussian_with(0.0, sigma),
                    rng.next_gaussian_with(0.0, sigma),
                )
            }),
            ChannelModel::Identity => {
                assert_eq!(n_rx, n_tx, "Identity channel requires n_rx == n_tx");
                CMatrix::identity(n_rx)
            }
        }
    }
}

/// Adds circularly-symmetric complex AWGN of total per-entry variance
/// `noise_variance` (i.e. `N(0, σ²/2)` per real component) to `y` in place.
pub fn add_awgn(y: &mut CVector, noise_variance: f64, rng: &mut Rng64) {
    assert!(noise_variance >= 0.0, "add_awgn: negative variance");
    if noise_variance == 0.0 {
        return;
    }
    let sigma = (noise_variance / 2.0).sqrt();
    for i in 0..y.len() {
        y[i] += Complex64::new(
            rng.next_gaussian_with(0.0, sigma),
            rng.next_gaussian_with(0.0, sigma),
        );
    }
}

/// Converts an SNR in dB to the AWGN per-entry noise variance for unit-energy
/// signaling (`E[|x|²] = 1` per transmit antenna, `n_tx` interferers summed
/// at each receive antenna).
pub fn snr_db_to_noise_variance(snr_db: f64, n_tx: usize) -> f64 {
    let snr_linear = 10f64.powf(snr_db / 10.0);
    n_tx as f64 / snr_linear
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_gain_entries_have_unit_magnitude() {
        let mut rng = Rng64::new(1);
        let h = ChannelModel::UnitGainRandomPhase.generate(4, 6, &mut rng);
        for r in 0..4 {
            for c in 0..6 {
                assert!((h[(r, c)].abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unit_gain_phases_cover_the_circle() {
        let mut rng = Rng64::new(2);
        let h = ChannelModel::UnitGainRandomPhase.generate(16, 16, &mut rng);
        let mut quadrants = [false; 4];
        for r in 0..16 {
            for c in 0..16 {
                let arg = h[(r, c)].arg();
                let q = if arg >= 0.0 { 0 } else { 2 }
                    + if arg.abs() > std::f64::consts::FRAC_PI_2 {
                        1
                    } else {
                        0
                    };
                quadrants[q] = true;
            }
        }
        assert!(
            quadrants.iter().all(|&q| q),
            "phases not spread: {quadrants:?}"
        );
    }

    #[test]
    fn rayleigh_mean_energy_is_one() {
        let mut rng = Rng64::new(3);
        let h = ChannelModel::RayleighIid.generate(64, 64, &mut rng);
        let mean: f64 = (0..64)
            .flat_map(|r| (0..64).map(move |c| (r, c)))
            .map(|(r, c)| h[(r, c)].norm_sqr())
            .sum::<f64>()
            / (64.0 * 64.0);
        assert!((mean - 1.0).abs() < 0.05, "E|h|²={mean}");
    }

    #[test]
    fn identity_channel_passes_through() {
        let mut rng = Rng64::new(4);
        let h = ChannelModel::Identity.generate(3, 3, &mut rng);
        let x = CVector::from_vec(vec![
            Complex64::new(1.0, -1.0),
            Complex64::new(0.5, 2.0),
            Complex64::new(-3.0, 0.0),
        ]);
        let y = h.matvec(&x);
        for i in 0..3 {
            assert!((y[i] - x[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "requires n_rx == n_tx")]
    fn identity_rejects_rectangular() {
        ChannelModel::Identity.generate(2, 3, &mut Rng64::new(0));
    }

    #[test]
    fn awgn_zero_variance_is_noop() {
        let mut rng = Rng64::new(5);
        let mut y = CVector::from_vec(vec![Complex64::new(1.0, 2.0)]);
        add_awgn(&mut y, 0.0, &mut rng);
        assert_eq!(y[0], Complex64::new(1.0, 2.0));
    }

    #[test]
    fn awgn_variance_matches_request() {
        let mut rng = Rng64::new(6);
        let n = 20_000;
        let mut y = CVector::zeros(n);
        add_awgn(&mut y, 0.5, &mut rng);
        let measured: f64 = (0..n).map(|i| y[i].norm_sqr()).sum::<f64>() / n as f64;
        assert!((measured - 0.5).abs() < 0.02, "variance {measured}");
    }

    #[test]
    fn snr_conversion_reference_points() {
        // 0 dB, 1 antenna → variance 1; 10 dB, 10 antennas → variance 1.
        assert!((snr_db_to_noise_variance(0.0, 1) - 1.0).abs() < 1e-12);
        assert!((snr_db_to_noise_variance(10.0, 10) - 1.0).abs() < 1e-12);
    }
}
