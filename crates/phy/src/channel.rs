//! Wireless channel synthesis and noise injection.
//!
//! The paper's evaluation channel (§4.2) is "unit gain … with random phase":
//! every entry of `H` is `e^{jθ}`, `θ ~ U[0, 2π)`, and **no AWGN** is added
//! (the QUBO ground state is then exactly the transmitted symbol vector,
//! which is what makes success probabilities measurable without search).
//! Rayleigh fading and AWGN are provided for the extension experiments.
//!
//! For streaming workloads, [`ChannelTrack`] extends the one-shot models
//! with a Gauss–Markov *time-correlated* channel process: successive frames
//! share a slowly-evolving channel, which is what makes cross-frame solution
//! reuse (warm-started solvers) physically meaningful.

use crate::instance::{DetectionInstance, InstanceConfig};
use crate::mimo::MimoSystem;
use crate::modulation::Modulation;
use hqw_math::{CMatrix, CVector, Complex64, Rng64};

/// Channel matrix models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelModel {
    /// `H_ij = e^{jθ_ij}` with i.i.d. uniform phases — the paper's model.
    UnitGainRandomPhase,
    /// i.i.d. circularly-symmetric complex Gaussian entries,
    /// `CN(0, 1)` (Rayleigh-fading magnitudes).
    RayleighIid,
    /// The identity channel (needs `n_rx == n_tx`); for calibration tests.
    Identity,
}

impl ChannelModel {
    /// Stable machine-readable name (used in scenario reports).
    pub fn name(self) -> &'static str {
        match self {
            ChannelModel::UnitGainRandomPhase => "unit-gain-random-phase",
            ChannelModel::RayleighIid => "rayleigh-iid",
            ChannelModel::Identity => "identity",
        }
    }

    /// Every channel model, in declaration order.
    pub const ALL: [ChannelModel; 3] = [
        ChannelModel::UnitGainRandomPhase,
        ChannelModel::RayleighIid,
        ChannelModel::Identity,
    ];

    /// Parses a [`ChannelModel::name`] back (`None` for unknown names) —
    /// the experiment-spec layer's inverse of `name`.
    pub fn from_name(name: &str) -> Option<ChannelModel> {
        ChannelModel::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Draws an `n_rx × n_tx` channel matrix.
    ///
    /// # Panics
    /// Panics for [`ChannelModel::Identity`] when `n_rx != n_tx`.
    pub fn generate(self, n_rx: usize, n_tx: usize, rng: &mut Rng64) -> CMatrix {
        match self {
            ChannelModel::UnitGainRandomPhase => CMatrix::from_fn(n_rx, n_tx, |_, _| {
                Complex64::from_polar(1.0, rng.next_range(0.0, std::f64::consts::TAU))
            }),
            ChannelModel::RayleighIid => CMatrix::from_fn(n_rx, n_tx, |_, _| {
                // CN(0,1): each component N(0, 1/2).
                let sigma = (0.5f64).sqrt();
                Complex64::new(
                    rng.next_gaussian_with(0.0, sigma),
                    rng.next_gaussian_with(0.0, sigma),
                )
            }),
            ChannelModel::Identity => {
                assert_eq!(n_rx, n_tx, "Identity channel requires n_rx == n_tx");
                CMatrix::identity(n_rx)
            }
        }
    }
}

/// Adds circularly-symmetric complex AWGN of total per-entry variance
/// `noise_variance` (i.e. `N(0, σ²/2)` per real component) to `y` in place.
pub fn add_awgn(y: &mut CVector, noise_variance: f64, rng: &mut Rng64) {
    assert!(noise_variance >= 0.0, "add_awgn: negative variance");
    if noise_variance == 0.0 {
        return;
    }
    let sigma = (noise_variance / 2.0).sqrt();
    for i in 0..y.len() {
        y[i] += Complex64::new(
            rng.next_gaussian_with(0.0, sigma),
            rng.next_gaussian_with(0.0, sigma),
        );
    }
}

/// Configuration of a temporally-correlated channel track.
///
/// Describes the Gauss–Markov (first-order autoregressive) channel process
/// `h_{t+1} = ρ·h_t + √(1−ρ²)·w_t` with i.i.d. `CN(0, 1)` innovations
/// `w_t` — the standard discrete-time model of a Rayleigh-fading channel
/// with coherence `ρ` between successive frames. The process is stationary:
/// every marginal `h_t` is entrywise `CN(0, 1)`, so `ρ` interpolates between
/// fresh [`ChannelModel::RayleighIid`] draws every frame (`ρ = 0`) and a
/// frozen channel (`ρ = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackConfig {
    /// Number of transmitting users.
    pub n_users: usize,
    /// Number of base-station receive antennas.
    pub n_rx: usize,
    /// Modulation for all users.
    pub modulation: Modulation,
    /// Frame-to-frame channel coherence `ρ ∈ [0, 1]`.
    pub rho: f64,
    /// AWGN per-antenna variance (0 = noiseless frames).
    pub noise_variance: f64,
}

impl TrackConfig {
    /// Validates the track parameters.
    ///
    /// # Errors
    /// Returns a message (no context prefix — callers add their own) for
    /// the first violated constraint: zero antennas/users, `ρ ∉ [0, 1]`, or
    /// a non-finite/negative noise variance.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_users == 0 {
            return Err("track needs at least one user".to_string());
        }
        if self.n_rx == 0 {
            return Err("track needs at least one receive antenna".to_string());
        }
        if !(0.0..=1.0).contains(&self.rho) {
            return Err(format!("rho must be in [0, 1], got {}", self.rho));
        }
        if !self.noise_variance.is_finite() || self.noise_variance < 0.0 {
            return Err(format!(
                "noise variance must be finite and >= 0, got {}",
                self.noise_variance
            ));
        }
        Ok(())
    }

    /// The i.i.d. equivalent of this track: the [`InstanceConfig`] whose
    /// [`DetectionInstance::generate_batch`] output a `ρ = 0` track matches
    /// draw-for-draw on a shared seed (property-tested in `tests/`).
    pub fn instance_config(&self) -> InstanceConfig {
        InstanceConfig {
            n_users: self.n_users,
            n_rx: self.n_rx,
            modulation: self.modulation,
            channel: ChannelModel::RayleighIid,
            noise_variance: self.noise_variance,
        }
    }
}

/// A deterministic, seeded Gauss–Markov channel process: an infinite
/// iterator of per-frame [`DetectionInstance`]s over a time-correlated
/// channel (see [`TrackConfig`]).
///
/// Per frame, the RNG stream is consumed in a fixed order — innovation
/// matrix, transmitted bits, AWGN — so a track is a pure function of its
/// `(config, seed)` pair. At `ρ = 0` the innovation *is* the channel, and
/// the draw order matches [`DetectionInstance::generate`] with the
/// [`TrackConfig::instance_config`] model exactly: the track degenerates to
/// the i.i.d. batch generator, bit for bit.
#[derive(Debug)]
pub struct ChannelTrack {
    config: TrackConfig,
    rng: Rng64,
    h: Option<CMatrix>,
}

impl ChannelTrack {
    /// Creates a track from a config and a seed.
    ///
    /// # Panics
    /// Panics when `ρ ∉ [0, 1]` or the noise variance is negative.
    pub fn new(config: TrackConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.rho),
            "ChannelTrack: rho must be in [0, 1], got {}",
            config.rho
        );
        assert!(
            config.noise_variance >= 0.0,
            "ChannelTrack: negative noise variance"
        );
        ChannelTrack {
            config,
            rng: Rng64::new(seed),
            h: None,
        }
    }

    /// The track configuration.
    pub fn config(&self) -> &TrackConfig {
        &self.config
    }

    /// Builds `n_cells` **independent** tracks of the same configuration —
    /// one per radio cell of a multi-cell deployment sharing a centralized
    /// compute fabric. Each cell's seed derives from `seed` and the cell
    /// index alone, so cell `c`'s frame sequence is invariant to the number
    /// of other cells, the offered load, and the backend mix — the paired
    /// comparison the fabric grid's scenario axes rely on.
    ///
    /// # Panics
    /// Panics on invalid track parameters (see [`ChannelTrack::new`]).
    pub fn cells(config: TrackConfig, n_cells: usize, seed: u64) -> Vec<ChannelTrack> {
        (0..n_cells)
            .map(|c| {
                let mut mix = Rng64::new(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                ChannelTrack::new(config, mix.next_u64())
            })
            .collect()
    }
}

impl Iterator for ChannelTrack {
    type Item = DetectionInstance;

    fn next(&mut self) -> Option<DetectionInstance> {
        let cfg = self.config;
        // Innovation drawn every frame (even at ρ = 1) so the per-frame RNG
        // consumption — and therefore every later frame — is independent of ρ
        // in structure, and the ρ = 0 track matches i.i.d. draws exactly.
        let w = ChannelModel::RayleighIid.generate(cfg.n_rx, cfg.n_users, &mut self.rng);
        let h = match self.h.take() {
            None => w,
            Some(prev) => {
                let innovation = (1.0 - cfg.rho * cfg.rho).sqrt();
                CMatrix::from_fn(cfg.n_rx, cfg.n_users, |r, c| {
                    prev[(r, c)] * cfg.rho + w[(r, c)] * innovation
                })
            }
        };
        self.h = Some(h.clone());
        let system = MimoSystem::new(cfg.n_users, cfg.n_rx, cfg.modulation);
        Some(DetectionInstance::from_channel(
            system,
            h,
            cfg.noise_variance,
            &mut self.rng,
        ))
    }
}

/// Converts an SNR in dB to the AWGN per-entry noise variance for unit-energy
/// signaling (`E[|x|²] = 1` per transmit antenna, `n_tx` interferers summed
/// at each receive antenna).
pub fn snr_db_to_noise_variance(snr_db: f64, n_tx: usize) -> f64 {
    let snr_linear = 10f64.powf(snr_db / 10.0);
    n_tx as f64 / snr_linear
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_gain_entries_have_unit_magnitude() {
        let mut rng = Rng64::new(1);
        let h = ChannelModel::UnitGainRandomPhase.generate(4, 6, &mut rng);
        for r in 0..4 {
            for c in 0..6 {
                assert!((h[(r, c)].abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unit_gain_phases_cover_the_circle() {
        let mut rng = Rng64::new(2);
        let h = ChannelModel::UnitGainRandomPhase.generate(16, 16, &mut rng);
        let mut quadrants = [false; 4];
        for r in 0..16 {
            for c in 0..16 {
                let arg = h[(r, c)].arg();
                let q = if arg >= 0.0 { 0 } else { 2 }
                    + if arg.abs() > std::f64::consts::FRAC_PI_2 {
                        1
                    } else {
                        0
                    };
                quadrants[q] = true;
            }
        }
        assert!(
            quadrants.iter().all(|&q| q),
            "phases not spread: {quadrants:?}"
        );
    }

    #[test]
    fn rayleigh_mean_energy_is_one() {
        let mut rng = Rng64::new(3);
        let h = ChannelModel::RayleighIid.generate(64, 64, &mut rng);
        let mean: f64 = (0..64)
            .flat_map(|r| (0..64).map(move |c| (r, c)))
            .map(|(r, c)| h[(r, c)].norm_sqr())
            .sum::<f64>()
            / (64.0 * 64.0);
        assert!((mean - 1.0).abs() < 0.05, "E|h|²={mean}");
    }

    #[test]
    fn identity_channel_passes_through() {
        let mut rng = Rng64::new(4);
        let h = ChannelModel::Identity.generate(3, 3, &mut rng);
        let x = CVector::from_vec(vec![
            Complex64::new(1.0, -1.0),
            Complex64::new(0.5, 2.0),
            Complex64::new(-3.0, 0.0),
        ]);
        let y = h.matvec(&x);
        for i in 0..3 {
            assert!((y[i] - x[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "requires n_rx == n_tx")]
    fn identity_rejects_rectangular() {
        ChannelModel::Identity.generate(2, 3, &mut Rng64::new(0));
    }

    #[test]
    fn awgn_zero_variance_is_noop() {
        let mut rng = Rng64::new(5);
        let mut y = CVector::from_vec(vec![Complex64::new(1.0, 2.0)]);
        add_awgn(&mut y, 0.0, &mut rng);
        assert_eq!(y[0], Complex64::new(1.0, 2.0));
    }

    #[test]
    fn awgn_variance_matches_request() {
        let mut rng = Rng64::new(6);
        let n = 20_000;
        let mut y = CVector::zeros(n);
        add_awgn(&mut y, 0.5, &mut rng);
        let measured: f64 = (0..n).map(|i| y[i].norm_sqr()).sum::<f64>() / n as f64;
        assert!((measured - 0.5).abs() < 0.02, "variance {measured}");
    }

    fn track_config(rho: f64) -> TrackConfig {
        TrackConfig {
            n_users: 3,
            n_rx: 3,
            modulation: Modulation::Qpsk,
            rho,
            noise_variance: 0.2,
        }
    }

    #[test]
    fn track_is_deterministic_per_seed() {
        let a: Vec<_> = ChannelTrack::new(track_config(0.7), 11).take(4).collect();
        let b: Vec<_> = ChannelTrack::new(track_config(0.7), 11).take(4).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.h.max_abs_diff(&y.h), 0.0);
            assert_eq!(x.tx_gray_bits, y.tx_gray_bits);
            assert_eq!(x.y.sub(&y.y).norm_sqr(), 0.0);
        }
    }

    #[test]
    fn frozen_track_repeats_the_frame_zero_channel() {
        let frames: Vec<_> = ChannelTrack::new(track_config(1.0), 13).take(5).collect();
        for f in &frames[1..] {
            assert_eq!(frames[0].h.max_abs_diff(&f.h), 0.0, "ρ=1 channel drifted");
        }
        // The data still varies frame to frame.
        assert!(frames
            .iter()
            .any(|f| f.tx_gray_bits != frames[0].tx_gray_bits));
    }

    #[test]
    fn uncorrelated_track_matches_iid_batch_generation() {
        let cfg = track_config(0.0);
        let frames: Vec<_> = ChannelTrack::new(cfg, 17).take(4).collect();
        let batch =
            DetectionInstance::generate_batch(&cfg.instance_config(), 4, &mut Rng64::new(17));
        for (a, b) in frames.iter().zip(&batch) {
            assert_eq!(a.h.max_abs_diff(&b.h), 0.0);
            assert_eq!(a.tx_gray_bits, b.tx_gray_bits);
            assert_eq!(a.y.sub(&b.y).norm_sqr(), 0.0);
        }
    }

    #[test]
    fn correlated_track_is_stationary_and_coherent() {
        // Consecutive frames correlate at ρ; the marginal stays CN(0, 1).
        let mut track = ChannelTrack::new(
            TrackConfig {
                n_users: 8,
                n_rx: 8,
                modulation: Modulation::Qpsk,
                rho: 0.9,
                noise_variance: 0.0,
            },
            19,
        );
        let mut prev = track.next().unwrap().h;
        let (mut corr, mut energy, mut count) = (0.0, 0.0, 0);
        for _ in 0..60 {
            let cur = track.next().unwrap().h;
            for r in 0..8 {
                for c in 0..8 {
                    corr += (prev[(r, c)].conj() * cur[(r, c)]).re;
                    energy += cur[(r, c)].norm_sqr();
                    count += 1;
                }
            }
            prev = cur;
        }
        let corr = corr / count as f64;
        let energy = energy / count as f64;
        assert!((corr - 0.9).abs() < 0.08, "lag-1 correlation {corr}");
        assert!((energy - 1.0).abs() < 0.1, "marginal energy {energy}");
    }

    #[test]
    fn cell_tracks_are_independent_and_stable_under_cell_count() {
        let cfg = track_config(0.8);
        let mut four = ChannelTrack::cells(cfg, 4, 23);
        let mut two = ChannelTrack::cells(cfg, 2, 23);
        // Cell c's frames don't depend on how many cells exist.
        for c in 0..2 {
            let a = four[c].next().unwrap();
            let b = two[c].next().unwrap();
            assert_eq!(a.h.max_abs_diff(&b.h), 0.0, "cell {c} drifted");
            assert_eq!(a.tx_gray_bits, b.tx_gray_bits);
        }
        // Distinct cells see distinct channels.
        let h2 = four[2].next().unwrap().h;
        let h3 = four[3].next().unwrap().h;
        assert!(h2.max_abs_diff(&h3) > 0.0, "cells share a channel");
    }

    #[test]
    #[should_panic(expected = "rho must be in [0, 1]")]
    fn track_rejects_out_of_range_rho() {
        ChannelTrack::new(track_config(1.5), 1);
    }

    #[test]
    fn snr_conversion_reference_points() {
        // 0 dB, 1 antenna → variance 1; 10 dB, 10 antennas → variance 1.
        assert!((snr_db_to_noise_variance(0.0, 1) - 1.0).abs() < 1e-12);
        assert!((snr_db_to_noise_variance(10.0, 10) - 1.0).abs() < 1e-12);
    }
}
