//! Soft information: per-bit max-log log-likelihood ratios.
//!
//! Backs the paper's §3.1 "soft information to narrow the search space"
//! scheme (Figure 4): the receiver first equalizes the channel (ZF/MMSE),
//! then computes per-bit confidences on each user's equalized symbol; bits
//! with high |LLR| become pair-constraint candidates for
//! `hqw_qubo::constraints`.
//!
//! Max-log approximation on a per-user Gaussian channel:
//!
//! ```text
//!   LLR_b ≈ ( min_{p : bit_b(p)=1} |x̂ − p|² − min_{p : bit_b(p)=0} |x̂ − p|² ) / σ²
//! ```
//!
//! Sign convention: **positive LLR ⇒ bit 0 is more likely**.

use crate::mimo::MimoSystem;
use crate::modulation::Modulation;
use hqw_math::{CMatrix, CVector, Complex64};

/// Per-bit soft information for one user symbol.
///
/// `llrs[k]` is the max-log LLR of the `k`-th Gray-labeled bit.
pub fn symbol_llrs(modulation: Modulation, equalized: Complex64, noise_variance: f64) -> Vec<f64> {
    assert!(
        noise_variance > 0.0,
        "symbol_llrs: noise variance must be > 0"
    );
    let constellation = modulation.constellation();
    let bps = modulation.bits_per_symbol();
    let mut min0 = vec![f64::INFINITY; bps];
    let mut min1 = vec![f64::INFINITY; bps];
    for (bits, point) in &constellation {
        let dist = (equalized - *point).norm_sqr();
        for (k, &b) in bits.iter().enumerate() {
            if b == 0 {
                min0[k] = min0[k].min(dist);
            } else {
                min1[k] = min1[k].min(dist);
            }
        }
    }
    (0..bps)
        .map(|k| (min1[k] - min0[k]) / noise_variance)
        .collect()
}

/// Soft information for a whole channel use: ZF-equalize, then per-user
/// max-log LLRs. Returns a user-major flat vector of length
/// `n_tx · bits_per_symbol` (Gray labeling).
pub fn receiver_llrs(
    system: &MimoSystem,
    h: &CMatrix,
    y: &CVector,
    noise_variance: f64,
) -> Vec<f64> {
    // Equalize without slicing: the ZF solve, keeping raw estimates
    // (`detect::ZeroForcing` slices internally).
    let qr = hqw_math::linalg::QrReal::new(&h.to_real_stacked());
    let x_stacked = qr.solve_least_squares(&y.to_real_stacked());
    let estimates = CVector::from_real_stacked(&x_stacked);
    (0..system.n_tx)
        .flat_map(|u| symbol_llrs(system.modulation, estimates[u], noise_variance))
        .collect()
}

/// Selects high-confidence bits: indices (user-major, Gray labels) whose
/// |LLR| meets `threshold`, paired with the likely bit value.
pub fn confident_bits(llrs: &[f64], threshold: f64) -> Vec<(usize, u8)> {
    assert!(threshold >= 0.0, "confident_bits: negative threshold");
    llrs.iter()
        .enumerate()
        .filter(|(_, &l)| l.abs() >= threshold)
        .map(|(i, &l)| (i, if l > 0.0 { 0u8 } else { 1u8 }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{add_awgn, ChannelModel};
    use hqw_math::Rng64;

    #[test]
    fn llr_signs_match_transmitted_bits_noiseless() {
        // With the equalized point exactly on a constellation point, every
        // bit's LLR should point at the transmitted value.
        for m in Modulation::ALL {
            for (bits, point) in m.constellation() {
                let llrs = symbol_llrs(m, point, 0.1);
                for (k, &b) in bits.iter().enumerate() {
                    if b == 0 {
                        assert!(llrs[k] > 0.0, "{} bit {k}: LLR {}", m.name(), llrs[k]);
                    } else {
                        assert!(llrs[k] < 0.0, "{} bit {k}: LLR {}", m.name(), llrs[k]);
                    }
                }
            }
        }
    }

    #[test]
    fn llr_magnitude_shrinks_with_noise_variance() {
        let m = Modulation::Qam16;
        let point = m.constellation()[5].1;
        let low_noise = symbol_llrs(m, point, 0.01);
        let high_noise = symbol_llrs(m, point, 1.0);
        for k in 0..4 {
            assert!(low_noise[k].abs() > high_noise[k].abs());
        }
    }

    #[test]
    fn boundary_symbol_has_weak_llr() {
        // A point halfway between two constellation points has ~zero LLR on
        // the bit distinguishing them.
        let m = Modulation::Bpsk;
        let llrs = symbol_llrs(m, Complex64::new(0.0, 0.0), 0.5);
        assert!(llrs[0].abs() < 1e-9);
    }

    #[test]
    fn receiver_llrs_recover_bits_at_high_snr() {
        let mut rng = Rng64::new(91);
        let sys = MimoSystem::new(4, 4, Modulation::Qam16);
        let h = ChannelModel::UnitGainRandomPhase.generate(4, 4, &mut rng);
        let bits = sys.random_bits(&mut rng);
        let x = sys.modulate(&bits);
        let mut y = sys.transmit(&h, &x);
        add_awgn(&mut y, 1e-4, &mut rng);
        let llrs = receiver_llrs(&sys, &h, &y, 1e-4);
        assert_eq!(llrs.len(), 16);
        for (k, &b) in bits.iter().enumerate() {
            let decided = if llrs[k] > 0.0 { 0u8 } else { 1u8 };
            assert_eq!(decided, b, "bit {k}");
        }
    }

    #[test]
    fn confident_bits_filters_by_threshold() {
        let llrs = [5.0, -0.5, -8.0, 0.1];
        let picks = confident_bits(&llrs, 1.0);
        assert_eq!(picks, vec![(0, 0), (2, 1)]);
        assert_eq!(confident_bits(&llrs, 100.0), vec![]);
    }
}

/// Per-bit LLRs estimated from an annealer **sample set** — soft output for
/// the hybrid detector.
///
/// The anneal distribution is (approximately) a low-temperature Boltzmann
/// distribution over candidate solutions, so occurrence-weighted bit
/// marginals carry genuine reliability information — this is how a
/// quantum-assisted detector feeds a soft-decision channel decoder (the
/// soft-information applications the paper cites [20, 31, 57]).
///
/// `LLR_k = ln( (N_k(0) + α) / (N_k(1) + α) )` with additive smoothing
/// `α = 0.5` (Krichevsky–Trofimov), so all-agree bits get large finite
/// LLRs instead of ±∞. Sign convention matches [`symbol_llrs`]:
/// **positive ⇒ bit 0 more likely**. Bits are in the sample set's own
/// labeling (natural/QUBO for annealer output; convert with
/// `ReducedProblem::natural_to_gray` before handing to a decoder).
///
/// # Panics
/// Panics when the sample set is empty or `n_bits` mismatches the samples.
pub fn sample_llrs(samples: &hqw_qubo::SampleSet, n_bits: usize) -> Vec<f64> {
    assert!(!samples.is_empty(), "sample_llrs: empty sample set");
    let mut ones = vec![0.0f64; n_bits];
    let mut total = 0.0f64;
    for s in samples.iter() {
        assert_eq!(s.bits.len(), n_bits, "sample_llrs: bit-length mismatch");
        let w = s.occurrences as f64;
        total += w;
        for (k, &b) in s.bits.iter().enumerate() {
            if b == 1 {
                ones[k] += w;
            }
        }
    }
    const ALPHA: f64 = 0.5;
    ones.iter()
        .map(|&n1| ((total - n1 + ALPHA) / (n1 + ALPHA)).ln())
        .collect()
}

#[cfg(test)]
mod sample_llr_tests {
    use super::*;
    use hqw_qubo::SampleSet;

    #[test]
    fn unanimous_samples_give_confident_llrs() {
        let set = SampleSet::from_reads(vec![
            (vec![0, 1], -5.0),
            (vec![0, 1], -5.0),
            (vec![0, 1], -5.0),
        ]);
        let llrs = sample_llrs(&set, 2);
        assert!(llrs[0] > 1.0, "bit 0 always 0 ⇒ strongly positive LLR");
        assert!(llrs[1] < -1.0, "bit 1 always 1 ⇒ strongly negative LLR");
        assert!(
            llrs[0].is_finite() && llrs[1].is_finite(),
            "smoothing keeps LLRs finite"
        );
    }

    #[test]
    fn split_samples_give_weak_llrs() {
        let set = SampleSet::from_reads(vec![(vec![0], -1.0), (vec![1], -1.0)]);
        let llrs = sample_llrs(&set, 1);
        assert!(llrs[0].abs() < 1e-9, "50/50 split ⇒ zero LLR");
    }

    #[test]
    fn occurrence_weighting_matters() {
        let set = SampleSet::from_reads(vec![
            (vec![0], -2.0),
            (vec![0], -2.0),
            (vec![0], -2.0),
            (vec![1], -1.0),
        ]);
        let llrs = sample_llrs(&set, 1);
        // 3 zeros vs 1 one: ln(3.5/1.5) ≈ 0.847.
        assert!((llrs[0] - (3.5f64 / 1.5).ln()).abs() < 1e-9);
    }

    #[test]
    fn hybrid_soft_output_matches_ground_truth_signs() {
        // End-to-end: anneal a noiseless instance, derive sample LLRs, and
        // check every confident bit agrees with the transmitted data.
        use hqw_math::Rng64;
        let mut rng = Rng64::new(17);
        let inst = crate::instance::DetectionInstance::generate(
            &crate::instance::InstanceConfig::paper(2, Modulation::Qpsk),
            &mut rng,
        );
        // Build a sample set concentrated on the ground state plus strays.
        let truth = inst.tx_natural_bits.clone();
        let mut stray = truth.clone();
        stray[0] ^= 1;
        let e_truth = inst.reduction.qubo.energy(&truth);
        let e_stray = inst.reduction.qubo.energy(&stray);
        let reads: Vec<(Vec<u8>, f64)> = std::iter::repeat_n((truth.clone(), e_truth), 9)
            .chain(std::iter::once((stray, e_stray)))
            .collect();
        let set = hqw_qubo::SampleSet::from_reads(reads);
        let llrs = sample_llrs(&set, truth.len());
        for (k, &b) in truth.iter().enumerate() {
            let decided = if llrs[k] > 0.0 { 0u8 } else { 1u8 };
            assert_eq!(decided, b, "soft bit {k} disagrees with the transmission");
        }
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_sample_set_rejected() {
        sample_llrs(&SampleSet::new(), 4);
    }
}
