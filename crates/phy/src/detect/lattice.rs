//! Shared real-lattice representation for tree-search detectors.
//!
//! Sphere decoding and its fixed-complexity relatives search the
//! real-stacked system `ỹ = H̃·x̃` after a QR decomposition: with
//! `H̃ = Q·R`, minimizing `‖ỹ − H̃x̃‖²` equals minimizing
//! `‖Qᵀỹ − R·x̃‖²` (up to a constant), and the upper-triangular `R` lets the
//! residual accumulate one dimension at a time from the last row up — the
//! classic depth-first tree.
//!
//! Dimensions `0..n_tx` are the users' I rails, `n_tx..2·n_tx` the Q rails;
//! each dimension takes values from its rail's (scaled) PAM levels. BPSK's
//! Q rail has the single level 0, which the tree handles uniformly.

use crate::mimo::MimoSystem;
use crate::modulation::Modulation;
use hqw_math::linalg::QrReal;
use hqw_math::{CMatrix, CVector, Complex64, RVector};

/// QR-reduced real-valued search problem.
#[derive(Debug, Clone)]
pub struct RealLattice {
    /// Upper-triangular factor `R` (`2·n_tx × 2·n_tx`).
    r: Vec<Vec<f64>>,
    /// Rotated observation `Qᵀ·ỹ`.
    qty: Vec<f64>,
    /// Candidate levels per dimension (already scaled).
    levels: Vec<Vec<f64>>,
    n_tx: usize,
}

impl RealLattice {
    /// Builds the lattice for `(H, y)`.
    ///
    /// # Panics
    /// Panics on dimension mismatches or when `2·n_rx < 2·n_tx` (the QR
    /// needs at least as many equations as unknowns).
    pub fn new(system: &MimoSystem, h: &CMatrix, y: &CVector) -> Self {
        assert_eq!(h.rows(), system.n_rx, "RealLattice: channel rows");
        assert_eq!(h.cols(), system.n_tx, "RealLattice: channel cols");
        assert_eq!(y.len(), system.n_rx, "RealLattice: observation length");
        assert!(
            system.n_rx >= system.n_tx,
            "RealLattice: need n_rx ≥ n_tx for QR-based search"
        );
        let h_stacked = h.to_real_stacked();
        let y_stacked = y.to_real_stacked();
        let qr = QrReal::new(&h_stacked);
        let qty_v: RVector = qr.qt_y(&y_stacked);
        let dim = 2 * system.n_tx;

        let r = (0..dim)
            .map(|i| (0..dim).map(|j| qr.r()[(i, j)]).collect())
            .collect();
        let qty = (0..dim).map(|i| qty_v[i]).collect();

        let scale = system.modulation.scale();
        let i_levels: Vec<f64> = Modulation::rail_levels(system.modulation.i_bits())
            .iter()
            .map(|l| l * scale)
            .collect();
        let q_levels: Vec<f64> = Modulation::rail_levels(system.modulation.q_bits())
            .iter()
            .map(|l| l * scale)
            .collect();
        let mut levels = Vec::with_capacity(dim);
        for _ in 0..system.n_tx {
            levels.push(i_levels.clone());
        }
        for _ in 0..system.n_tx {
            levels.push(q_levels.clone());
        }

        RealLattice {
            r,
            qty,
            levels,
            n_tx: system.n_tx,
        }
    }

    /// Search-space dimensionality (`2·n_tx`).
    pub fn dim(&self) -> usize {
        self.levels.len()
    }

    /// Candidate levels for dimension `d`.
    pub fn levels(&self, d: usize) -> &[f64] {
        &self.levels[d]
    }

    /// Given the partial assignment `x[d+1..]` (entries below `d+1` unused),
    /// the unconstrained optimum for dimension `d` and the residual term:
    /// returns `(center, r_dd)` with per-level cost
    /// `(r_dd·x_d − r_dd·center)² = r_dd²·(x_d − center)²`.
    pub fn layer_center(&self, d: usize, x: &[f64]) -> (f64, f64) {
        let dim = self.dim();
        let mut acc = self.qty[d];
        for j in d + 1..dim {
            acc -= self.r[d][j] * x[j];
        }
        let rdd = self.r[d][d];
        if rdd.abs() < 1e-12 {
            (0.0, 0.0)
        } else {
            (acc / rdd, rdd)
        }
    }

    /// Incremental cost of assigning `value` at dimension `d` given the
    /// partial assignment above it.
    pub fn layer_cost(&self, d: usize, value: f64, x: &[f64]) -> f64 {
        let (center, rdd) = self.layer_center(d, x);
        let diff = rdd * (value - center);
        diff * diff
    }

    /// Babai (successive nearest-plane) point: greedy rounding from the last
    /// dimension down. Returns `(x, total cost)` — a cheap upper bound for
    /// search radii and the backbone of FCSD's non-expanded layers.
    pub fn babai(&self) -> (Vec<f64>, f64) {
        let dim = self.dim();
        let mut x = vec![0.0; dim];
        let mut cost = 0.0;
        for d in (0..dim).rev() {
            let (center, _) = self.layer_center(d, &x);
            let best = nearest_level(&self.levels[d], center);
            cost += self.layer_cost(d, best, &x);
            x[d] = best;
        }
        (x, cost)
    }

    /// Full residual `‖Qᵀỹ − R·x‖²` of a complete assignment.
    pub fn total_cost(&self, x: &[f64]) -> f64 {
        let dim = self.dim();
        assert_eq!(x.len(), dim, "total_cost: assignment length");
        let mut cost = 0.0;
        for d in 0..dim {
            let mut acc = self.qty[d];
            for j in d..dim {
                acc -= self.r[d][j] * x[j];
            }
            cost += acc * acc;
        }
        cost
    }

    /// Converts a real lattice point back to complex per-user symbols.
    pub fn to_symbols(&self, x: &[f64]) -> CVector {
        assert_eq!(x.len(), self.dim(), "to_symbols: assignment length");
        CVector::from_vec(
            (0..self.n_tx)
                .map(|u| Complex64::new(x[u], x[self.n_tx + u]))
                .collect(),
        )
    }
}

/// Nearest value in a non-empty sorted-or-not level list.
pub(crate) fn nearest_level(levels: &[f64], target: f64) -> f64 {
    debug_assert!(!levels.is_empty());
    let mut best = levels[0];
    let mut best_dist = (levels[0] - target).abs();
    for &l in &levels[1..] {
        let d = (l - target).abs();
        if d < best_dist {
            best = l;
            best_dist = d;
        }
    }
    best
}

/// Levels sorted by distance to `target` (Schnorr-Euchner enumeration order).
pub(crate) fn levels_by_distance(levels: &[f64], target: f64) -> Vec<f64> {
    let mut sorted = levels.to_vec();
    sorted.sort_by(|a, b| {
        (a - target)
            .abs()
            .partial_cmp(&(b - target).abs())
            .expect("levels_by_distance: NaN")
    });
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::noiseless;
    use crate::modulation::Modulation;

    #[test]
    fn truth_has_zero_cost_noiseless() {
        for m in Modulation::ALL {
            let sc = noiseless(m, 3, 5);
            let lattice = RealLattice::new(&sc.system, &sc.h, &sc.y);
            let x_true = sc.system.modulate(&sc.tx_bits);
            let stacked: Vec<f64> = (0..3)
                .map(|u| x_true[u].re)
                .chain((0..3).map(|u| x_true[u].im))
                .collect();
            assert!(
                lattice.total_cost(&stacked) < 1e-9,
                "{}: truth cost {}",
                m.name(),
                lattice.total_cost(&stacked)
            );
        }
    }

    #[test]
    fn babai_solves_noiseless_exactly() {
        // With zero noise the nearest-plane point is the transmitted vector.
        for m in Modulation::ALL {
            let sc = noiseless(m, 4, 11);
            let lattice = RealLattice::new(&sc.system, &sc.h, &sc.y);
            let (x, cost) = lattice.babai();
            assert!(cost < 1e-9, "{}: babai cost {cost}", m.name());
            let symbols = lattice.to_symbols(&x);
            assert_eq!(sc.system.demodulate(&symbols), sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn layer_costs_sum_to_total() {
        let sc = noiseless(Modulation::Qam16, 3, 23);
        let lattice = RealLattice::new(&sc.system, &sc.h, &sc.y);
        // Any complete assignment: accumulate layer costs from top dim down.
        let dim = lattice.dim();
        let mut x = vec![0.0; dim];
        let mut acc = 0.0;
        for d in (0..dim).rev() {
            let level = lattice.levels(d)[0];
            acc += lattice.layer_cost(d, level, &x);
            x[d] = level;
        }
        assert!((acc - lattice.total_cost(&x)).abs() < 1e-9);
    }

    #[test]
    fn bpsk_q_rail_is_pinned_to_zero() {
        let sc = noiseless(Modulation::Bpsk, 4, 31);
        let lattice = RealLattice::new(&sc.system, &sc.h, &sc.y);
        for d in 4..8 {
            assert_eq!(lattice.levels(d), &[0.0]);
        }
    }

    #[test]
    fn enumeration_order_is_by_distance() {
        let order = levels_by_distance(&[-3.0, -1.0, 1.0, 3.0], 0.8);
        assert_eq!(order, vec![1.0, -1.0, 3.0, -3.0]);
        assert_eq!(nearest_level(&[-3.0, -1.0, 1.0, 3.0], 0.8), 1.0);
    }
}
