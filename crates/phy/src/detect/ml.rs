//! Brute-force maximum-likelihood detection.
//!
//! Enumerates every possible transmit vector — the gold standard that the
//! sphere decoder must match exactly, and the explicit form of the objective
//! the QUBO reduction encodes. Guarded to small systems.

use super::{DetectionResult, Detector, DetectorMeta};
use crate::mimo::MimoSystem;
use hqw_math::{CMatrix, CVector};

/// Exhaustive ML search over `order^{n_tx}` candidate vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct MlBruteForce;

/// Largest total bit-width this detector will enumerate (2²⁰ ≈ 10⁶ vectors).
const MAX_TOTAL_BITS: usize = 20;

impl Detector for MlBruteForce {
    fn name(&self) -> &'static str {
        "ML"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let total_bits = system.bits_per_use();
        assert!(
            total_bits <= MAX_TOTAL_BITS,
            "MlBruteForce: {total_bits} bits exceeds the {MAX_TOTAL_BITS}-bit enumeration guard"
        );
        let mut best_bits = Vec::new();
        let mut best_metric = f64::INFINITY;
        for code in 0u64..(1u64 << total_bits) {
            let bits: Vec<u8> = (0..total_bits).map(|k| ((code >> k) & 1) as u8).collect();
            let x = system.modulate(&bits);
            let metric = system.ml_metric(h, y, &x);
            if metric < best_metric {
                best_metric = metric;
                best_bits = bits;
            }
        }
        let symbols = system.modulate(&best_bits);
        DetectionResult {
            symbols,
            gray_bits: best_bits,
            meta: DetectorMeta {
                nodes_visited: 1u64 << total_bits,
                sweeps: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{add_awgn, ChannelModel};
    use crate::detect::testutil::noiseless;
    use crate::detect::ZeroForcing;
    use crate::modulation::Modulation;
    use hqw_math::Rng64;

    #[test]
    fn ml_recovers_noiseless_transmissions() {
        for (m, n) in [
            (Modulation::Bpsk, 6),
            (Modulation::Qpsk, 4),
            (Modulation::Qam16, 3),
            (Modulation::Qam64, 2),
        ] {
            let sc = noiseless(m, n, 9);
            let det = MlBruteForce.detect(&sc.system, &sc.h, &sc.y);
            assert_eq!(det.gray_bits, sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn ml_is_at_least_as_good_as_zf_under_noise() {
        let mut rng = Rng64::new(12);
        let sys = MimoSystem::new(3, 3, Modulation::Qam16);
        for _ in 0..10 {
            let h = ChannelModel::RayleighIid.generate(3, 3, &mut rng);
            let bits = sys.random_bits(&mut rng);
            let x = sys.modulate(&bits);
            let mut y = sys.transmit(&h, &x);
            add_awgn(&mut y, 0.3, &mut rng);
            let ml = MlBruteForce.detect(&sys, &h, &y);
            let zf = ZeroForcing.detect(&sys, &h, &y);
            let ml_metric = sys.ml_metric(&h, &y, &ml.symbols);
            let zf_metric = sys.ml_metric(&h, &y, &zf.symbols);
            assert!(
                ml_metric <= zf_metric + 1e-9,
                "ML metric {ml_metric} worse than ZF {zf_metric}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "enumeration guard")]
    fn oversized_system_is_rejected() {
        let sc = noiseless(Modulation::Qam64, 4, 1); // 24 bits > 20
        MlBruteForce.detect(&sc.system, &sc.h, &sc.y);
    }
}
