//! QUBO-backed detection: the anneal path wrapped as a [`Detector`].
//!
//! This is the adapter that lets the paper's quantum-annealing detection
//! pipeline stand in any line-up of classical detectors: `(H, y)` is reduced
//! to QUBO form with the QuAMax transform ([`crate::reduction`]) and handed
//! to the simulated-annealing sampler in `hqw-qubo` (the classical stand-in
//! for the QPU; `hqw-core::scenario::HybridDetector` is the same adapter
//! around the full annealer-backed `HybridSolver`). The best sample is
//! converted back to Gray-labeled wireless bits and constellation symbols.
//!
//! Determinism: [`Detector::detect`] takes no RNG, so the sampler seed is
//! derived from the detector's stored base seed XOR a fingerprint of the
//! instance data (`H`, `y`). The detector is therefore a pure function of
//! its inputs — repeated calls, and calls from different worker threads of
//! the scenario engine, produce bit-identical results.

use super::{DetectionResult, Detector, DetectorMeta};
use crate::mimo::MimoSystem;
use crate::reduction::reduce_to_qubo;
use hqw_math::{CMatrix, CVector, Rng64};
use hqw_qubo::sa::{sample_qubo, SaParams};

/// FNV-1a fingerprint of an instance's channel and observation.
///
/// Folds the IEEE-754 bit patterns of every matrix/vector entry, so any
/// change to the instance changes the fingerprint (up to hash collisions)
/// and equal instances always agree. Used to derive per-instance sampler
/// seeds inside seedless [`Detector::detect`] calls.
pub fn instance_fingerprint(h: &CMatrix, y: &CVector) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut fold = |v: f64| {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for r in 0..h.rows() {
        for c in 0..h.cols() {
            fold(h[(r, c)].re);
            fold(h[(r, c)].im);
        }
    }
    for i in 0..y.len() {
        fold(y[i].re);
        fold(y[i].im);
    }
    hash
}

/// Detector that routes through the ML→QUBO reduction into simulated
/// annealing — the classical-hardware twin of the paper's QPU detection
/// path, and the anneal-backed arm of the BER-vs-SNR scenario engine.
#[derive(Debug, Clone, Copy)]
pub struct QuboDetector {
    /// Simulated-annealing parameters for the sampling stage.
    pub params: SaParams,
    /// Base seed; the effective per-call seed is
    /// `seed ^ instance_fingerprint(h, y)`.
    pub seed: u64,
}

impl QuboDetector {
    /// Creates a detector with default SA parameters.
    pub fn new(seed: u64) -> Self {
        QuboDetector {
            params: SaParams::default(),
            seed,
        }
    }

    /// Creates a detector with explicit SA parameters.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn with_params(params: SaParams, seed: u64) -> Self {
        params.validate_or_panic();
        QuboDetector { params, seed }
    }
}

impl Detector for QuboDetector {
    fn name(&self) -> &'static str {
        "QUBO-SA"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let reduction = reduce_to_qubo(system, h, y);
        let mut rng = Rng64::new(self.seed ^ instance_fingerprint(h, y));
        let samples = sample_qubo(&reduction.qubo, &self.params, &mut rng);
        let best = samples.best().expect("SA always returns ≥ 1 read");
        let symbols = reduction.bits_to_symbols(&best.bits);
        let gray_bits = reduction.natural_to_gray(&best.bits);
        DetectionResult {
            symbols,
            gray_bits,
            meta: DetectorMeta {
                nodes_visited: 0,
                sweeps: (self.params.sweeps * self.params.num_reads) as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::noiseless;
    use crate::modulation::Modulation;

    fn quick_params() -> SaParams {
        SaParams {
            sweeps: 64,
            num_reads: 16,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_noiseless_transmissions() {
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            let sc = noiseless(m, 3, 81);
            let det = QuboDetector::with_params(quick_params(), 7).detect(&sc.system, &sc.h, &sc.y);
            assert_eq!(det.gray_bits, sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn detect_is_a_pure_function_of_its_inputs() {
        let sc = noiseless(Modulation::Qam16, 3, 83);
        let d = QuboDetector::with_params(quick_params(), 11);
        let a = d.detect(&sc.system, &sc.h, &sc.y);
        let b = d.detect(&sc.system, &sc.h, &sc.y);
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_separates_instances_and_is_stable() {
        let a = noiseless(Modulation::Qpsk, 3, 85);
        let b = noiseless(Modulation::Qpsk, 3, 86);
        assert_eq!(
            instance_fingerprint(&a.h, &a.y),
            instance_fingerprint(&a.h, &a.y)
        );
        assert_ne!(
            instance_fingerprint(&a.h, &a.y),
            instance_fingerprint(&b.h, &b.y)
        );
    }

    #[test]
    fn reports_sweep_metadata() {
        let sc = noiseless(Modulation::Qpsk, 2, 87);
        let d = QuboDetector::with_params(quick_params(), 3);
        let det = d.detect(&sc.system, &sc.h, &sc.y);
        assert_eq!(det.meta.sweeps, 64 * 16);
        assert_eq!(det.meta.nodes_visited, 0);
    }

    #[test]
    #[should_panic(expected = "sweeps must be > 0")]
    fn invalid_params_rejected() {
        QuboDetector::with_params(
            SaParams {
                sweeps: 0,
                ..Default::default()
            },
            1,
        );
    }
}
