//! Classical MIMO detectors.
//!
//! These serve two roles in the reproduction:
//!
//! * **Baselines** — the receivers a base station runs today (ZF, MMSE,
//!   sphere-decoder family).
//! * **Hybrid initializers** — the paper's §5 names linear solvers
//!   (zero-forcing) and tree-based solvers (FCSD \[4\], K-best SD \[17\]) as the
//!   candidate application-specific classical stages to seed Reverse
//!   Annealing; `hqw-core` wraps any [`Detector`] as such a stage.
//!
//! | detector | optimality | complexity |
//! |---|---|---|
//! | [`ZeroForcing`] | none (linear) | one least-squares solve |
//! | [`Mmse`] | none (linear) | one regularized solve |
//! | [`MlBruteForce`] | exact ML | `O(2^{bits})` — tiny systems only |
//! | [`SphereDecoder`] | exact ML | exponential worst case, fast in practice |
//! | [`KBest`] | approximate | fixed `K·levels` per layer |
//! | [`Fcsd`] | approximate | fixed `levels^ρ` paths |

mod fcsd;
mod kbest;
mod lattice;
mod linear;
mod ml;
mod qubo;
mod sphere;

pub use fcsd::Fcsd;
pub use kbest::KBest;
pub use lattice::RealLattice;
pub use linear::{Mmse, ZeroForcing};
pub use ml::MlBruteForce;
pub use qubo::{instance_fingerprint, QuboDetector};
pub use sphere::SphereDecoder;

use crate::mimo::MimoSystem;
use hqw_math::{CMatrix, CVector};

/// Work metadata reported by a detector alongside its decision.
///
/// The fields are *algorithmic* counters, not wall-clock measurements, so
/// they are bit-identical across runs and thread counts — the scenario
/// engine aggregates them into its deterministic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectorMeta {
    /// Search-tree nodes visited / candidate vectors evaluated
    /// (0 for detectors without a search tree, e.g. linear ones).
    pub nodes_visited: u64,
    /// Annealer/SA sweeps executed across all reads
    /// (0 for purely classical one-shot detectors).
    pub sweeps: u64,
}

/// Hard-decision output of a detector.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// Detected transmit symbols (one per user, exact constellation points).
    pub symbols: CVector,
    /// Detected Gray-labeled bits, user-major.
    pub gray_bits: Vec<u8>,
    /// Algorithmic work counters for this detection.
    pub meta: DetectorMeta,
}

/// A hard-decision MIMO detector.
///
/// `Send + Sync` is a supertrait so boxed detectors can fan out across the
/// deterministic parallel scenario engine in `hqw-core`. Implementations
/// must be deterministic functions of `(H, y)` (any internal randomness must
/// derive from a stored seed plus the instance data, as
/// [`QuboDetector`] does), so BER sweeps are bit-identical for every thread
/// count.
pub trait Detector: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Detects the transmitted symbols from `(H, y)`.
    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult;
}

/// Builds a [`DetectionResult`] by slicing per-user estimates to the nearest
/// constellation point.
pub(crate) fn result_from_estimates(system: &MimoSystem, estimates: &CVector) -> DetectionResult {
    let mut symbols = CVector::zeros(system.n_tx);
    let mut gray_bits = Vec::with_capacity(system.bits_per_use());
    for u in 0..system.n_tx {
        let (bits, sym) = system.modulation.slice(estimates[u]);
        symbols[u] = sym;
        gray_bits.extend(bits);
    }
    DetectionResult {
        symbols,
        gray_bits,
        meta: DetectorMeta::default(),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::modulation::Modulation;
    use hqw_math::Rng64;

    /// A noiseless random-phase scenario with known transmitted bits.
    pub struct Scenario {
        pub system: MimoSystem,
        pub h: CMatrix,
        pub y: CVector,
        pub tx_bits: Vec<u8>,
    }

    pub fn noiseless(m: Modulation, n: usize, seed: u64) -> Scenario {
        let mut rng = Rng64::new(seed);
        let system = MimoSystem::new(n, n, m);
        let h = ChannelModel::UnitGainRandomPhase.generate(n, n, &mut rng);
        let tx_bits = system.random_bits(&mut rng);
        let x = system.modulate(&tx_bits);
        let y = system.transmit(&h, &x);
        Scenario {
            system,
            h,
            y,
            tx_bits,
        }
    }
}
