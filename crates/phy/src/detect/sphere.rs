//! Depth-first sphere decoder with Schnorr-Euchner enumeration.
//!
//! Exact ML detection: explores the QR-reduced search tree depth-first,
//! visiting each layer's levels in order of increasing distance from the
//! layer's unconstrained optimum and pruning branches whose partial residual
//! already exceeds the best complete solution (initialized from the Babai
//! point, so the radius is finite from the start).

use super::lattice::{levels_by_distance, RealLattice};
use super::{DetectionResult, Detector, DetectorMeta};
use crate::mimo::MimoSystem;
use hqw_math::{CMatrix, CVector};

/// Exact depth-first sphere decoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct SphereDecoder {
    /// Optional hard cap on tree-node visits; `None` = exact search.
    /// When the cap is hit the best solution found so far is returned
    /// (a common latency guard in practical receivers).
    pub max_nodes: Option<usize>,
}

impl SphereDecoder {
    /// Exact (uncapped) sphere decoder.
    pub fn exact() -> Self {
        SphereDecoder { max_nodes: None }
    }

    /// Sphere decoder with a node-visit budget.
    pub fn with_budget(max_nodes: usize) -> Self {
        SphereDecoder {
            max_nodes: Some(max_nodes),
        }
    }
}

struct Search<'a> {
    lattice: &'a RealLattice,
    best_cost: f64,
    best_x: Vec<f64>,
    nodes: usize,
    max_nodes: usize,
}

impl Search<'_> {
    fn dfs(&mut self, d: usize, x: &mut [f64], partial_cost: f64) {
        if self.nodes >= self.max_nodes {
            return;
        }
        self.nodes += 1;
        let (center, _) = self.lattice.layer_center(d, x);
        for level in levels_by_distance(self.lattice.levels(d), center) {
            let cost = partial_cost + self.lattice.layer_cost(d, level, x);
            if cost >= self.best_cost {
                // Schnorr-Euchner order ⇒ every later level is worse too.
                break;
            }
            x[d] = level;
            if d == 0 {
                self.best_cost = cost;
                self.best_x.copy_from_slice(x);
            } else {
                self.dfs(d - 1, x, cost);
            }
        }
    }
}

impl Detector for SphereDecoder {
    fn name(&self) -> &'static str {
        "SD"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let lattice = RealLattice::new(system, h, y);
        let dim = lattice.dim();
        // Babai point: finite initial radius and a guaranteed fallback.
        let (babai_x, babai_cost) = lattice.babai();

        let mut search = Search {
            lattice: &lattice,
            best_cost: babai_cost + 1e-12, // allow re-finding an equal-cost leaf
            best_x: babai_x,
            nodes: 0,
            max_nodes: self.max_nodes.unwrap_or(usize::MAX),
        };
        let mut x = vec![0.0; dim];
        search.dfs(dim - 1, &mut x, 0.0);

        let symbols = lattice.to_symbols(&search.best_x);
        let gray_bits = system.demodulate(&symbols);
        DetectionResult {
            symbols,
            gray_bits,
            meta: DetectorMeta {
                nodes_visited: search.nodes as u64,
                sweeps: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{add_awgn, ChannelModel};
    use crate::detect::testutil::noiseless;
    use crate::detect::MlBruteForce;
    use crate::modulation::Modulation;
    use hqw_math::Rng64;

    #[test]
    fn recovers_noiseless_transmissions() {
        for m in Modulation::ALL {
            let sc = noiseless(m, 4, 21);
            let det = SphereDecoder::exact().detect(&sc.system, &sc.h, &sc.y);
            assert_eq!(det.gray_bits, sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn matches_brute_force_ml_under_noise() {
        // The defining property: the SD metric equals the exhaustive ML
        // metric on every instance (the argmin may differ only on exact ties).
        let mut rng = Rng64::new(31);
        for m in [Modulation::Qpsk, Modulation::Qam16] {
            let n = if m == Modulation::Qpsk { 4 } else { 3 };
            let sys = MimoSystem::new(n, n, m);
            for trial in 0..8 {
                let h = ChannelModel::RayleighIid.generate(n, n, &mut rng);
                let bits = sys.random_bits(&mut rng);
                let x = sys.modulate(&bits);
                let mut y = sys.transmit(&h, &x);
                add_awgn(&mut y, 0.5, &mut rng);
                let ml = MlBruteForce.detect(&sys, &h, &y);
                let sd = SphereDecoder::exact().detect(&sys, &h, &y);
                let m_ml = sys.ml_metric(&h, &y, &ml.symbols);
                let m_sd = sys.ml_metric(&h, &y, &sd.symbols);
                assert!(
                    (m_ml - m_sd).abs() < 1e-9,
                    "{} trial {trial}: SD {m_sd} vs ML {m_ml}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn budgeted_search_still_returns_a_valid_answer() {
        let sc = noiseless(Modulation::Qam16, 4, 41);
        let det = SphereDecoder::with_budget(1).detect(&sc.system, &sc.h, &sc.y);
        // With one node the decoder falls back to (at worst) the Babai point,
        // which is exact in the noiseless case anyway.
        assert_eq!(det.gray_bits.len(), sc.system.bits_per_use());
    }

    #[test]
    fn handles_larger_noiseless_systems() {
        // 8 users of 16-QAM = 32 bits: far beyond brute force, fine for SD
        // in the noiseless regime.
        let sc = noiseless(Modulation::Qam16, 8, 51);
        let det = SphereDecoder::exact().detect(&sc.system, &sc.h, &sc.y);
        assert_eq!(det.gray_bits, sc.tx_bits);
    }
}
