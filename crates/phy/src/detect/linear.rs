//! Linear detectors: zero-forcing and MMSE.
//!
//! The paper's §5 highlights linear solvers ("e.g., zero-forcing") as
//! initializers that "can likely achieve better initialization quality than
//! GS, requiring matrix inversion … and thus slightly longer compute time,
//! but their process cannot be parallelized".

use super::{result_from_estimates, DetectionResult, Detector};
use crate::mimo::MimoSystem;
use hqw_math::linalg::{LuComplex, QrReal};
use hqw_math::{CMatrix, CVector, Complex64};

/// Zero-forcing: `x̂ = H⁺·y`, then per-user slicing.
///
/// Implemented as a real-stacked least-squares solve so rectangular
/// (overdetermined) systems work too.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroForcing;

impl Detector for ZeroForcing {
    fn name(&self) -> &'static str {
        "ZF"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let qr = QrReal::new(&h.to_real_stacked());
        let x_stacked = qr.solve_least_squares(&y.to_real_stacked());
        let estimates = CVector::from_real_stacked(&x_stacked);
        result_from_estimates(system, &estimates)
    }
}

/// Linear MMSE: `x̂ = (HᴴH + σ²·I)⁻¹ Hᴴ y`, then per-user slicing.
///
/// With `noise_variance = 0` this degenerates to zero-forcing (on
/// well-conditioned channels).
#[derive(Debug, Clone, Copy)]
pub struct Mmse {
    /// Assumed per-receive-antenna noise variance `σ²`.
    pub noise_variance: f64,
}

impl Mmse {
    /// Creates an MMSE detector for the given noise variance.
    ///
    /// # Panics
    /// Panics on negative variance.
    pub fn new(noise_variance: f64) -> Self {
        assert!(noise_variance >= 0.0, "Mmse: negative noise variance");
        Mmse { noise_variance }
    }
}

impl Detector for Mmse {
    fn name(&self) -> &'static str {
        "MMSE"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let mut gram = h.gram(); // HᴴH (n_tx × n_tx)
        for i in 0..system.n_tx {
            gram[(i, i)] += Complex64::real(self.noise_variance);
        }
        let hh_y = h.hermitian().matvec(y);
        let estimates = LuComplex::new(&gram)
            .expect("Mmse: regularized Gram matrix should be invertible")
            .solve(&hh_y);
        result_from_estimates(system, &estimates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{add_awgn, ChannelModel};
    use crate::detect::testutil::noiseless;
    use crate::modulation::Modulation;
    use hqw_math::Rng64;

    #[test]
    fn zf_recovers_noiseless_transmissions() {
        for m in Modulation::ALL {
            let sc = noiseless(m, 6, 3);
            let det = ZeroForcing.detect(&sc.system, &sc.h, &sc.y);
            assert_eq!(det.gray_bits, sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn mmse_recovers_noiseless_transmissions() {
        for m in Modulation::ALL {
            let sc = noiseless(m, 6, 4);
            let det = Mmse::new(0.0).detect(&sc.system, &sc.h, &sc.y);
            assert_eq!(det.gray_bits, sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn detected_symbols_are_constellation_points() {
        let sc = noiseless(Modulation::Qam64, 4, 5);
        let det = ZeroForcing.detect(&sc.system, &sc.h, &sc.y);
        let points = Modulation::Qam64.constellation();
        for u in 0..4 {
            assert!(
                points
                    .iter()
                    .any(|(_, p)| (det.symbols[u] - *p).abs() < 1e-9),
                "symbol {u} not on the constellation"
            );
        }
    }

    #[test]
    fn mmse_beats_zf_under_noise_on_average() {
        // Classic result: at moderate SNR the regularized solve makes fewer
        // bit errors than plain inversion. Statistical check over instances.
        let mut rng = Rng64::new(77);
        let sys = MimoSystem::new(8, 8, Modulation::Qam16);
        let noise_var = 0.05;
        let mut zf_errors = 0usize;
        let mut mmse_errors = 0usize;
        for _ in 0..30 {
            let h = ChannelModel::RayleighIid.generate(8, 8, &mut rng);
            let bits = sys.random_bits(&mut rng);
            let x = sys.modulate(&bits);
            let mut y = sys.transmit(&h, &x);
            add_awgn(&mut y, noise_var, &mut rng);
            let zf = ZeroForcing.detect(&sys, &h, &y);
            let mmse = Mmse::new(noise_var).detect(&sys, &h, &y);
            zf_errors += zf
                .gray_bits
                .iter()
                .zip(&bits)
                .filter(|(a, b)| a != b)
                .count();
            mmse_errors += mmse
                .gray_bits
                .iter()
                .zip(&bits)
                .filter(|(a, b)| a != b)
                .count();
        }
        assert!(
            mmse_errors <= zf_errors,
            "MMSE ({mmse_errors}) should not lose to ZF ({zf_errors})"
        );
    }

    #[test]
    fn overdetermined_systems_supported() {
        let mut rng = Rng64::new(6);
        let sys = MimoSystem::new(3, 6, Modulation::Qpsk);
        let h = ChannelModel::RayleighIid.generate(6, 3, &mut rng);
        let bits = sys.random_bits(&mut rng);
        let x = sys.modulate(&bits);
        let y = sys.transmit(&h, &x);
        assert_eq!(ZeroForcing.detect(&sys, &h, &y).gray_bits, bits);
        assert_eq!(Mmse::new(0.01).detect(&sys, &h, &y).gray_bits, bits);
    }
}
