//! Fixed-complexity sphere decoding (FCSD).
//!
//! Named in the paper's §5 (Barbero & Thompson [4]): enumerate *all* levels
//! on the first `ρ` tree layers, then complete each of the `levelsᵖ` partial
//! paths with the cheap Babai (nearest-plane) rule. Complexity is exactly
//! `levels^ρ` completions regardless of channel realization — attractive for
//! pipelined hardware where worst-case latency matters (the paper's
//! Challenge 3), and each path is independent, "enabling parallelism".

use super::lattice::{nearest_level, RealLattice};
use super::{DetectionResult, Detector, DetectorMeta};
use crate::mimo::MimoSystem;
use hqw_math::{CMatrix, CVector};

/// FCSD with `rho` fully-expanded layers.
#[derive(Debug, Clone, Copy)]
pub struct Fcsd {
    /// Number of top tree layers to expand exhaustively.
    pub rho: usize,
}

impl Fcsd {
    /// Creates an FCSD detector expanding `rho` layers.
    pub fn new(rho: usize) -> Self {
        Fcsd { rho }
    }

    /// Number of candidate paths this configuration completes for `system`.
    pub fn path_count(&self, system: &MimoSystem) -> usize {
        let dim = 2 * system.n_tx;
        let rho = self.rho.min(dim);
        let mut count = 1usize;
        for d in (dim - rho..dim).rev() {
            let m = if d >= system.n_tx {
                system.modulation.q_bits()
            } else {
                system.modulation.i_bits()
            };
            count = count.saturating_mul(1usize << m);
        }
        count
    }
}

impl Detector for Fcsd {
    fn name(&self) -> &'static str {
        "FCSD"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let lattice = RealLattice::new(system, h, y);
        let dim = lattice.dim();
        let rho = self.rho.min(dim);
        let expand_from = dim - rho; // layers dim-1 .. expand_from are expanded

        let mut best_cost = f64::INFINITY;
        let mut best_x = vec![0.0; dim];
        let mut completions = 0u64;

        // Iterative enumeration of the expanded prefix.
        let mut stack: Vec<(usize, Vec<f64>, f64)> = vec![(dim, vec![0.0; dim], 0.0)];
        while let Some((d, x, cost)) = stack.pop() {
            if d == expand_from {
                completions += 1;
                // Complete with Babai from layer d−1 down.
                let mut xc = x.clone();
                let mut total = cost;
                for dd in (0..d).rev() {
                    let (center, _) = lattice.layer_center(dd, &xc);
                    let level = nearest_level(lattice.levels(dd), center);
                    total += lattice.layer_cost(dd, level, &xc);
                    xc[dd] = level;
                }
                if total < best_cost {
                    best_cost = total;
                    best_x = xc;
                }
                continue;
            }
            let layer = d - 1;
            for &level in lattice.levels(layer) {
                let mut xn = x.clone();
                xn[layer] = level;
                let c = cost + lattice.layer_cost(layer, level, &x);
                stack.push((layer, xn, c));
            }
        }

        let symbols = lattice.to_symbols(&best_x);
        let gray_bits = system.demodulate(&symbols);
        DetectionResult {
            symbols,
            gray_bits,
            meta: DetectorMeta {
                nodes_visited: completions,
                sweeps: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{add_awgn, ChannelModel};
    use crate::detect::testutil::noiseless;
    use crate::detect::MlBruteForce;
    use crate::modulation::Modulation;
    use hqw_math::Rng64;

    #[test]
    fn rho_zero_is_pure_babai_and_solves_noiseless() {
        for m in Modulation::ALL {
            let sc = noiseless(m, 4, 71);
            let det = Fcsd::new(0).detect(&sc.system, &sc.h, &sc.y);
            assert_eq!(det.gray_bits, sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn full_expansion_is_exact() {
        let mut rng = Rng64::new(73);
        let sys = MimoSystem::new(3, 3, Modulation::Qpsk);
        for _ in 0..5 {
            let h = ChannelModel::RayleighIid.generate(3, 3, &mut rng);
            let bits = sys.random_bits(&mut rng);
            let x = sys.modulate(&bits);
            let mut y = sys.transmit(&h, &x);
            add_awgn(&mut y, 0.3, &mut rng);
            let fc = Fcsd::new(6).detect(&sys, &h, &y); // all 6 layers expanded
            let ml = MlBruteForce.detect(&sys, &h, &y);
            let m_fc = sys.ml_metric(&h, &y, &fc.symbols);
            let m_ml = sys.ml_metric(&h, &y, &ml.symbols);
            assert!((m_fc - m_ml).abs() < 1e-9, "{m_fc} vs {m_ml}");
        }
    }

    #[test]
    fn quality_improves_with_rho_statistically() {
        let mut rng = Rng64::new(75);
        let sys = MimoSystem::new(5, 5, Modulation::Qam16);
        let mut m0 = 0.0;
        let mut m3 = 0.0;
        for _ in 0..10 {
            let h = ChannelModel::RayleighIid.generate(5, 5, &mut rng);
            let bits = sys.random_bits(&mut rng);
            let x = sys.modulate(&bits);
            let mut y = sys.transmit(&h, &x);
            add_awgn(&mut y, 0.5, &mut rng);
            m0 += sys.ml_metric(&h, &y, &Fcsd::new(0).detect(&sys, &h, &y).symbols);
            m3 += sys.ml_metric(&h, &y, &Fcsd::new(3).detect(&sys, &h, &y).symbols);
        }
        assert!(
            m3 <= m0 + 1e-9,
            "rho=3 ({m3}) should not lose to rho=0 ({m0})"
        );
    }

    #[test]
    fn path_count_is_fixed_complexity() {
        let sys = MimoSystem::new(4, 4, Modulation::Qam16);
        // Top layers are Q rails (2 bits → 4 levels each).
        assert_eq!(Fcsd::new(0).path_count(&sys), 1);
        assert_eq!(Fcsd::new(1).path_count(&sys), 4);
        assert_eq!(Fcsd::new(2).path_count(&sys), 16);
    }
}
