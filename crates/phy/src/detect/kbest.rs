//! K-best sphere decoding (breadth-first, fixed complexity).
//!
//! Named in the paper's §5 (Guo & Nilsson [17]) as a tree-based initializer
//! with "tunable complexity, enabling parallelism, which could provide some
//! control over ΔE_IS%": at each layer only the `K` lowest-cost partial
//! paths survive, so complexity is fixed at `K·levels` extensions per layer
//! and solution quality rises with `K`.

use super::lattice::RealLattice;
use super::{DetectionResult, Detector, DetectorMeta};
use crate::mimo::MimoSystem;
use hqw_math::{CMatrix, CVector};

/// Breadth-first K-best detector.
#[derive(Debug, Clone, Copy)]
pub struct KBest {
    /// Number of surviving partial paths per layer (`K ≥ 1`).
    pub k: usize,
}

impl KBest {
    /// Creates a K-best detector.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "KBest: k must be at least 1");
        KBest { k }
    }
}

#[derive(Clone)]
struct Path {
    x: Vec<f64>,
    cost: f64,
}

impl Detector for KBest {
    fn name(&self) -> &'static str {
        "K-best"
    }

    fn detect(&self, system: &MimoSystem, h: &CMatrix, y: &CVector) -> DetectionResult {
        let lattice = RealLattice::new(system, h, y);
        let dim = lattice.dim();

        let mut frontier = vec![Path {
            x: vec![0.0; dim],
            cost: 0.0,
        }];
        let mut extensions = 0u64;
        for d in (0..dim).rev() {
            let mut extended: Vec<Path> = Vec::with_capacity(frontier.len() * 4);
            for path in &frontier {
                for &level in lattice.levels(d) {
                    let cost = path.cost + lattice.layer_cost(d, level, &path.x);
                    let mut x = path.x.clone();
                    x[d] = level;
                    extended.push(Path { x, cost });
                }
            }
            extensions += extended.len() as u64;
            extended.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("KBest: NaN cost"));
            extended.truncate(self.k);
            frontier = extended;
        }

        let best = &frontier[0];
        let symbols = lattice.to_symbols(&best.x);
        let gray_bits = system.demodulate(&symbols);
        DetectionResult {
            symbols,
            gray_bits,
            meta: DetectorMeta {
                nodes_visited: extensions,
                sweeps: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{add_awgn, ChannelModel};
    use crate::detect::testutil::noiseless;
    use crate::detect::SphereDecoder;
    use crate::modulation::Modulation;
    use hqw_math::Rng64;

    #[test]
    fn recovers_noiseless_transmissions_with_moderate_k() {
        for m in Modulation::ALL {
            let sc = noiseless(m, 4, 61);
            let det = KBest::new(8).detect(&sc.system, &sc.h, &sc.y);
            assert_eq!(det.gray_bits, sc.tx_bits, "{}", m.name());
        }
    }

    #[test]
    fn quality_is_monotone_in_k_statistically() {
        let mut rng = Rng64::new(63);
        let sys = MimoSystem::new(6, 6, Modulation::Qam16);
        let mut metric_k1 = 0.0;
        let mut metric_k16 = 0.0;
        for _ in 0..10 {
            let h = ChannelModel::RayleighIid.generate(6, 6, &mut rng);
            let bits = sys.random_bits(&mut rng);
            let x = sys.modulate(&bits);
            let mut y = sys.transmit(&h, &x);
            add_awgn(&mut y, 0.4, &mut rng);
            metric_k1 += sys.ml_metric(&h, &y, &KBest::new(1).detect(&sys, &h, &y).symbols);
            metric_k16 += sys.ml_metric(&h, &y, &KBest::new(16).detect(&sys, &h, &y).symbols);
        }
        assert!(
            metric_k16 <= metric_k1 + 1e-9,
            "K=16 ({metric_k16}) should not lose to K=1 ({metric_k1})"
        );
    }

    #[test]
    fn large_k_matches_exact_sphere_decoder() {
        let mut rng = Rng64::new(65);
        let sys = MimoSystem::new(3, 3, Modulation::Qpsk);
        for _ in 0..5 {
            let h = ChannelModel::RayleighIid.generate(3, 3, &mut rng);
            let bits = sys.random_bits(&mut rng);
            let x = sys.modulate(&bits);
            let mut y = sys.transmit(&h, &x);
            add_awgn(&mut y, 0.3, &mut rng);
            // K = full width ⇒ exhaustive breadth-first ⇒ exact.
            let kb = KBest::new(4096).detect(&sys, &h, &y);
            let sd = SphereDecoder::exact().detect(&sys, &h, &y);
            let m_kb = sys.ml_metric(&h, &y, &kb.symbols);
            let m_sd = sys.ml_metric(&h, &y, &sd.symbols);
            assert!((m_kb - m_sd).abs() < 1e-9, "{m_kb} vs {m_sd}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        KBest::new(0);
    }
}
