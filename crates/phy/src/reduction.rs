//! The maximum-likelihood-to-QUBO reduction (QuAMax transform).
//!
//! The paper applies "the same mapping" as QuAMax (Kim, Venturelli &
//! Jamieson, SIGCOMM '19 \[29\]) to turn ML detection into the QUBO of Eq. 1.
//! The derivation implemented here:
//!
//! 1. **Real decomposition.** Stack the complex system into real form,
//!    `ỹ = H̃·x̃` with `H̃ = [Re −Im; Im Re]`, so each user contributes two
//!    real "rails" (I and Q).
//! 2. **Spin-linear symbol map.** Under natural labeling each rail amplitude
//!    is linear in spins: `x̃ = T·s`, where `T` places the binary weights
//!    `[2^{m−1}, …, 1]·scale` of each rail's bits (BPSK's Q rail has no
//!    bits and is fixed at 0).
//! 3. **Expansion.** `‖ỹ − H̃T s‖² = sᵀA s + bᵀ s + c` with `A = TᵀG̃T`,
//!    `G̃ = H̃ᵀH̃`, `b = −2 TᵀH̃ᵀỹ`, `c = ‖ỹ‖²`. Since `s_i² = 1`, the
//!    diagonal of `A` is constant and moves into `c`; the rest is an Ising
//!    model (`h = b`, `J_ij = 2A_ij`), converted exactly to QUBO form with
//!    offset tracking.
//!
//! The result: for **every** assignment `q`,
//! `qubo.energy(q) + ml_offset == ‖y − H·x(q)‖²` — property-tested below and
//! in `tests/`. In particular, on the paper's noiseless instances the QUBO
//! ground energy is exactly `−ml_offset` and the ground state is the
//! transmitted symbol vector.
//!
//! Variable ordering: user-major; within a user, I-rail bits MSB→LSB then
//! Q-rail bits MSB→LSB — `n_tx · bits_per_symbol` variables total, matching
//! the paper's problem sizing.

use crate::mimo::MimoSystem;
use crate::modulation::Modulation;
use hqw_math::{CMatrix, CVector, RMatrix};
use hqw_qubo::{Ising, Qubo};

/// Output of the ML→QUBO reduction.
#[derive(Debug, Clone)]
pub struct ReducedProblem {
    /// The QUBO over natural-labeled symbol bits.
    pub qubo: Qubo,
    /// Constant such that `qubo.energy(q) + ml_offset = ‖y − H·x(q)‖²`.
    pub ml_offset: f64,
    /// The system the reduction was built for.
    pub system: MimoSystem,
}

impl ReducedProblem {
    /// ML residual metric of an assignment: `‖y − H·x(q)‖²`, evaluated
    /// through the QUBO (exact up to floating-point rounding).
    pub fn ml_metric(&self, natural_bits: &[u8]) -> f64 {
        self.qubo.energy(natural_bits) + self.ml_offset
    }

    /// Reconstructs per-user transmit symbols from natural-labeled bits.
    pub fn bits_to_symbols(&self, natural_bits: &[u8]) -> CVector {
        let bps = self.system.modulation.bits_per_symbol();
        assert_eq!(natural_bits.len(), self.system.n_tx * bps);
        CVector::from_vec(
            natural_bits
                .chunks(bps)
                .map(|chunk| self.system.modulation.natural_bits_to_symbol(chunk))
                .collect(),
        )
    }

    /// Converts a full natural-labeled assignment to Gray-labeled wireless
    /// bits (user-major).
    pub fn natural_to_gray(&self, natural_bits: &[u8]) -> Vec<u8> {
        let bps = self.system.modulation.bits_per_symbol();
        natural_bits
            .chunks(bps)
            .flat_map(|chunk| self.system.modulation.natural_to_gray(chunk))
            .collect()
    }

    /// Converts Gray-labeled wireless bits to natural-labeled QUBO variables.
    pub fn gray_to_natural(&self, gray_bits: &[u8]) -> Vec<u8> {
        let bps = self.system.modulation.bits_per_symbol();
        gray_bits
            .chunks(bps)
            .flat_map(|chunk| self.system.modulation.gray_to_natural(chunk))
            .collect()
    }
}

/// Builds the spin-weight matrix `T` (`2·n_tx × n_vars`): rail amplitudes as
/// a linear map of spins.
fn spin_weight_matrix(system: &MimoSystem) -> RMatrix {
    let modulation = system.modulation;
    let n_tx = system.n_tx;
    let bps = modulation.bits_per_symbol();
    let mi = modulation.i_bits();
    let scale = modulation.scale();
    let n_vars = n_tx * bps;

    let mut t = RMatrix::zeros(2 * n_tx, n_vars);
    for u in 0..n_tx {
        let base = u * bps;
        for (k, &w) in Modulation::rail_weights(mi).iter().enumerate() {
            t[(u, base + k)] = w * scale; // I rail → stacked row u
        }
        for (k, &w) in Modulation::rail_weights(modulation.q_bits())
            .iter()
            .enumerate()
        {
            t[(n_tx + u, base + mi + k)] = w * scale; // Q rail → stacked row n_tx+u
        }
    }
    t
}

/// Reduces an ML detection problem `(H, y)` to QUBO form.
///
/// # Panics
/// Panics when `h` is not `n_rx × n_tx` or `y` is not length `n_rx`.
pub fn reduce_to_qubo(system: &MimoSystem, h: &CMatrix, y: &CVector) -> ReducedProblem {
    assert_eq!(h.rows(), system.n_rx, "reduce_to_qubo: channel rows");
    assert_eq!(h.cols(), system.n_tx, "reduce_to_qubo: channel cols");
    assert_eq!(y.len(), system.n_rx, "reduce_to_qubo: observation length");

    let n_vars = system.bits_per_use();
    let h_stacked = h.to_real_stacked(); // 2n_rx × 2n_tx
    let y_stacked = y.to_real_stacked(); // 2n_rx
    let t = spin_weight_matrix(system); // 2n_tx × n_vars

    // A = Tᵀ (H̃ᵀH̃) T, computed as (H̃T)ᵀ(H̃T) for numerical symmetry.
    let ht = h_stacked.matmul(&t); // 2n_rx × n_vars
    let a = ht.gram(); // n_vars × n_vars
                       // b = −2 (H̃T)ᵀ ỹ
    let b = ht.tr_matvec(&y_stacked);

    let mut ising = Ising::new(n_vars);
    let mut const_term = y_stacked.norm_sqr();
    for i in 0..n_vars {
        ising.set_h(i, -2.0 * b[i]);
        const_term += a[(i, i)]; // s_i² = 1
        for j in i + 1..n_vars {
            let jij = 2.0 * a[(i, j)];
            if jij != 0.0 {
                ising.set_coupling(i, j, jij);
            }
        }
    }

    // E_ml(s) = ising.energy(s) + const_term; convert to QUBO exactly.
    let (qubo, ml_offset) = Qubo::from_ising_with_constant(&ising, const_term);
    ReducedProblem {
        qubo,
        ml_offset,
        system: *system,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use hqw_math::Rng64;
    use hqw_qubo::exact::exhaustive_minimum;

    fn setup(
        m: Modulation,
        n: usize,
        seed: u64,
    ) -> (MimoSystem, CMatrix, CVector, Vec<u8>, ReducedProblem) {
        let mut rng = Rng64::new(seed);
        let sys = MimoSystem::new(n, n, m);
        let h = ChannelModel::UnitGainRandomPhase.generate(n, n, &mut rng);
        let bits = sys.random_bits(&mut rng);
        let x = sys.modulate(&bits);
        let y = sys.transmit(&h, &x);
        let reduced = reduce_to_qubo(&sys, &h, &y);
        (sys, h, y, bits, reduced)
    }

    #[test]
    fn qubo_energy_equals_ml_metric_for_all_assignments() {
        // Exhaustive check on a tiny system: 2 users, QPSK → 4 variables.
        let (sys, h, y, _, reduced) = setup(Modulation::Qpsk, 2, 42);
        let n_vars = sys.bits_per_use();
        for code in 0..(1u32 << n_vars) {
            let bits: Vec<u8> = (0..n_vars).map(|k| ((code >> k) & 1) as u8).collect();
            let x = reduced.bits_to_symbols(&bits);
            let direct = sys.ml_metric(&h, &y, &x);
            let via_qubo = reduced.ml_metric(&bits);
            assert!(
                (direct - via_qubo).abs() < 1e-9,
                "code {code:b}: {direct} vs {via_qubo}"
            );
        }
    }

    #[test]
    fn transmitted_bits_are_the_ground_state_noiseless() {
        for m in Modulation::ALL {
            let n = match m {
                Modulation::Bpsk => 8,
                Modulation::Qpsk => 4,
                Modulation::Qam16 => 3,
                Modulation::Qam64 => 2,
            };
            let (_, _, _, gray_bits, reduced) = setup(m, n, 7);
            let natural = reduced.gray_to_natural(&gray_bits);
            // Noiseless: residual is exactly zero at the transmitted bits.
            assert!(
                reduced.ml_metric(&natural) < 1e-9,
                "{}: transmitted bits are not a zero-residual state",
                m.name()
            );
            // And no assignment can beat a zero residual; verify the QUBO
            // minimum matches for enumerable sizes.
            if reduced.qubo.num_vars() <= 16 {
                let (_, e_min) = exhaustive_minimum(&reduced.qubo);
                assert!(
                    (e_min + reduced.ml_offset).abs() < 1e-9,
                    "{}: ground energy is not zero residual",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn ml_offset_makes_energies_nonnegative() {
        let (_, _, _, _, reduced) = setup(Modulation::Qam16, 2, 99);
        let mut rng = Rng64::new(5);
        for _ in 0..100 {
            let bits: Vec<u8> = (0..reduced.qubo.num_vars())
                .map(|_| rng.next_bool() as u8)
                .collect();
            assert!(reduced.ml_metric(&bits) >= -1e-9, "residuals must be ≥ 0");
        }
    }

    #[test]
    fn variable_count_matches_paper_sizing() {
        let (_, _, _, _, r16) = setup(Modulation::Qam16, 9, 1);
        assert_eq!(r16.qubo.num_vars(), 36);
        let (_, _, _, _, r64) = setup(Modulation::Qam64, 6, 1);
        assert_eq!(r64.qubo.num_vars(), 36);
    }

    #[test]
    fn round_trip_bits_symbols() {
        let (sys, _, _, gray_bits, reduced) = setup(Modulation::Qam64, 3, 13);
        let natural = reduced.gray_to_natural(&gray_bits);
        let symbols = reduced.bits_to_symbols(&natural);
        let expected = sys.modulate(&gray_bits);
        for u in 0..sys.n_tx {
            assert!((symbols[u] - expected[u]).abs() < 1e-12);
        }
        assert_eq!(reduced.natural_to_gray(&natural), gray_bits);
    }

    #[test]
    fn rectangular_systems_are_supported() {
        // More receive antennas than users (overdetermined, the easy case).
        let mut rng = Rng64::new(17);
        let sys = MimoSystem::new(2, 4, Modulation::Qpsk);
        let h = ChannelModel::RayleighIid.generate(4, 2, &mut rng);
        let bits = sys.random_bits(&mut rng);
        let x = sys.modulate(&bits);
        let y = sys.transmit(&h, &x);
        let reduced = reduce_to_qubo(&sys, &h, &y);
        let natural = reduced.gray_to_natural(&bits);
        assert!(reduced.ml_metric(&natural) < 1e-9);
    }
}
