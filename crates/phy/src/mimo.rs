//! The spatial-multiplexing MIMO system model.
//!
//! `n_tx` single-antenna users each transmit one modulated symbol per
//! channel use; the base station observes `y = H·x + n` on `n_rx` antennas
//! and must jointly detect all users' symbols — the Large MIMO detection
//! problem the paper targets.

use crate::modulation::Modulation;
use hqw_math::{CMatrix, CVector, Rng64};

/// Static description of a MIMO uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MimoSystem {
    /// Number of transmitting users (= transmit antennas).
    pub n_tx: usize,
    /// Number of base-station receive antennas.
    pub n_rx: usize,
    /// Modulation used by every user.
    pub modulation: Modulation,
}

impl MimoSystem {
    /// Creates a system description.
    ///
    /// # Panics
    /// Panics when either antenna count is zero.
    pub fn new(n_tx: usize, n_rx: usize, modulation: Modulation) -> Self {
        assert!(
            n_tx > 0 && n_rx > 0,
            "MimoSystem: antenna counts must be positive"
        );
        MimoSystem {
            n_tx,
            n_rx,
            modulation,
        }
    }

    /// Total transmitted bits per channel use (= QUBO variables).
    pub fn bits_per_use(&self) -> usize {
        self.n_tx * self.modulation.bits_per_symbol()
    }

    /// Draws uniform random transmit bits for one channel use
    /// (Gray-labeled, user-major).
    pub fn random_bits(&self, rng: &mut Rng64) -> Vec<u8> {
        (0..self.bits_per_use())
            .map(|_| rng.next_bool() as u8)
            .collect()
    }

    /// Modulates per-user bits (Gray labels, user-major) into the transmit
    /// vector `x`.
    ///
    /// # Panics
    /// Panics when `bits.len() != bits_per_use()`.
    pub fn modulate(&self, bits: &[u8]) -> CVector {
        let bps = self.modulation.bits_per_symbol();
        assert_eq!(
            bits.len(),
            self.bits_per_use(),
            "modulate: bit count mismatch"
        );
        CVector::from_vec(
            bits.chunks(bps)
                .map(|chunk| self.modulation.modulate(chunk))
                .collect(),
        )
    }

    /// Demodulates a symbol vector back to Gray-labeled bits (user-major).
    ///
    /// # Panics
    /// Panics when `symbols.len() != n_tx`.
    pub fn demodulate(&self, symbols: &CVector) -> Vec<u8> {
        assert_eq!(
            symbols.len(),
            self.n_tx,
            "demodulate: symbol count mismatch"
        );
        (0..self.n_tx)
            .flat_map(|u| self.modulation.demodulate(symbols[u]))
            .collect()
    }

    /// Noiseless receive vector `y = H·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn transmit(&self, h: &CMatrix, x: &CVector) -> CVector {
        assert_eq!(h.rows(), self.n_rx, "transmit: channel rows");
        assert_eq!(h.cols(), self.n_tx, "transmit: channel cols");
        h.matvec(x)
    }

    /// Maximum-likelihood objective `‖y − H·x‖²` for a candidate `x`.
    pub fn ml_metric(&self, h: &CMatrix, y: &CVector, x: &CVector) -> f64 {
        y.sub(&h.matvec(x)).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;

    #[test]
    fn modulate_demodulate_round_trip() {
        let mut rng = Rng64::new(7);
        for m in Modulation::ALL {
            let sys = MimoSystem::new(4, 4, m);
            let bits = sys.random_bits(&mut rng);
            let x = sys.modulate(&bits);
            assert_eq!(x.len(), 4);
            assert_eq!(sys.demodulate(&x), bits, "{}", m.name());
        }
    }

    #[test]
    fn noiseless_identity_channel_is_transparent() {
        let mut rng = Rng64::new(8);
        let sys = MimoSystem::new(3, 3, Modulation::Qam16);
        let h = ChannelModel::Identity.generate(3, 3, &mut rng);
        let bits = sys.random_bits(&mut rng);
        let x = sys.modulate(&bits);
        let y = sys.transmit(&h, &x);
        assert_eq!(sys.demodulate(&y), bits);
    }

    #[test]
    fn ml_metric_zero_at_truth_positive_elsewhere() {
        let mut rng = Rng64::new(9);
        let sys = MimoSystem::new(4, 4, Modulation::Qpsk);
        let h = ChannelModel::UnitGainRandomPhase.generate(4, 4, &mut rng);
        let bits = sys.random_bits(&mut rng);
        let x = sys.modulate(&bits);
        let y = sys.transmit(&h, &x);
        assert!(sys.ml_metric(&h, &y, &x) < 1e-12);

        let mut other = bits.clone();
        other[0] ^= 1;
        let x2 = sys.modulate(&other);
        assert!(sys.ml_metric(&h, &y, &x2) > 1e-6);
    }

    #[test]
    fn bits_per_use_scales_with_modulation() {
        assert_eq!(MimoSystem::new(9, 9, Modulation::Qam16).bits_per_use(), 36);
        assert_eq!(MimoSystem::new(18, 18, Modulation::Qpsk).bits_per_use(), 36);
    }

    #[test]
    #[should_panic(expected = "antenna counts must be positive")]
    fn zero_antennas_rejected() {
        MimoSystem::new(0, 4, Modulation::Bpsk);
    }
}
