//! # hqw-phy — wireless PHY substrate
//!
//! Everything between "bits at the transmitter" and "a QUBO at the base
//! station's solver", faithful to the paper's §4.2 experimental setup:
//!
//! * [`modulation`] — Gray-coded BPSK / QPSK / 16-QAM / 64-QAM with the
//!   spin-linear lattice view used by the ML→QUBO reduction.
//! * [`channel`] — channel synthesis: the paper's unit-gain random-phase
//!   model, i.i.d. Rayleigh and AWGN for the extension experiments, and the
//!   Gauss–Markov [`channel::ChannelTrack`] for streaming workloads.
//! * [`mimo`] — the spatial-multiplexing system model `y = H·x + n`.
//! * [`reduction`] — the QuAMax maximum-likelihood-to-QUBO reduction
//!   (Kim et al., SIGCOMM '19), property-tested for exactness.
//! * [`detect`] — classical detectors: zero-forcing, MMSE, brute-force ML,
//!   depth-first sphere decoding, K-best, and fixed-complexity sphere
//!   decoding — the candidate RA initializers named in the paper's §5.
//! * [`llr`] — max-log soft information for the §3.1 constraint scheme.
//! * [`instance`] — detection-instance generator replicating the paper's
//!   evaluation workload (and noisy variants).
//! * [`metrics`] — BER / SER accounting.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Numeric kernels below index several arrays by one loop variable (often with
// an `i != j` guard); iterator rewrites obscure that symmetry.
#![allow(clippy::needless_range_loop)]

pub mod channel;
pub mod detect;
pub mod instance;
pub mod llr;
pub mod metrics;
pub mod mimo;
pub mod modulation;
pub mod reduction;

pub use channel::{ChannelTrack, TrackConfig};
pub use instance::{DetectionInstance, InstanceConfig};
pub use modulation::Modulation;
