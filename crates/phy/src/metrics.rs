//! Link-quality accounting: bit, symbol and vector error rates.

/// Bit error rate between transmitted and detected bit vectors.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn bit_error_rate(tx: &[u8], rx: &[u8]) -> f64 {
    assert_eq!(tx.len(), rx.len(), "bit_error_rate: length mismatch");
    assert!(!tx.is_empty(), "bit_error_rate: empty input");
    let errors = tx.iter().zip(rx).filter(|(a, b)| a != b).count();
    errors as f64 / tx.len() as f64
}

/// Symbol error rate: fraction of per-user symbols (bit groups of size
/// `bits_per_symbol`) containing at least one bit error.
///
/// # Panics
/// Panics on length mismatch, empty input, or lengths not divisible by
/// `bits_per_symbol`.
pub fn symbol_error_rate(tx: &[u8], rx: &[u8], bits_per_symbol: usize) -> f64 {
    assert_eq!(tx.len(), rx.len(), "symbol_error_rate: length mismatch");
    assert!(
        bits_per_symbol > 0,
        "symbol_error_rate: zero bits per symbol"
    );
    assert!(
        !tx.is_empty() && tx.len().is_multiple_of(bits_per_symbol),
        "symbol_error_rate: length not a multiple of bits_per_symbol"
    );
    let symbols = tx.len() / bits_per_symbol;
    let errors = tx
        .chunks(bits_per_symbol)
        .zip(rx.chunks(bits_per_symbol))
        .filter(|(a, b)| a != b)
        .count();
    errors as f64 / symbols as f64
}

/// Whole-vector (channel-use) error indicator: 1.0 when any bit differs.
pub fn vector_error(tx: &[u8], rx: &[u8]) -> f64 {
    if tx == rx {
        0.0
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_counts_flips() {
        assert_eq!(bit_error_rate(&[0, 1, 1, 0], &[0, 1, 1, 0]), 0.0);
        assert_eq!(bit_error_rate(&[0, 1, 1, 0], &[1, 1, 1, 1]), 0.5);
        assert_eq!(bit_error_rate(&[0], &[1]), 1.0);
    }

    #[test]
    fn ser_groups_bits() {
        // Two 2-bit symbols; one bit error in the first symbol only.
        assert_eq!(symbol_error_rate(&[0, 0, 1, 1], &[0, 1, 1, 1], 2), 0.5);
        assert_eq!(symbol_error_rate(&[0, 0, 1, 1], &[0, 0, 1, 1], 2), 0.0);
        // Both bits wrong in one symbol is still one symbol error.
        assert_eq!(symbol_error_rate(&[0, 0, 1, 1], &[1, 1, 1, 1], 2), 0.5);
    }

    #[test]
    fn vector_error_is_all_or_nothing() {
        assert_eq!(vector_error(&[0, 1], &[0, 1]), 0.0);
        assert_eq!(vector_error(&[0, 1], &[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ber_rejects_mismatch() {
        bit_error_rate(&[0], &[0, 1]);
    }
}
