//! Modulation: Gray-coded BPSK, QPSK, 16-QAM and 64-QAM.
//!
//! Two views of the same constellation coexist here, and keeping them
//! straight is what makes the ML→QUBO reduction exact:
//!
//! * **Modem view (Gray labels).** [`Modulation::modulate`] maps transmit
//!   bits to symbols with per-rail Gray labeling (adjacent amplitude levels
//!   differ in one bit), the standard wireless practice shown in the paper's
//!   Figure 4.
//! * **Solver view (natural labels).** A square-QAM symbol is *linear in
//!   spins* only under natural (binary-weighted) labeling:
//!   `level = Σ_k w_k·s_k` with `w = [2^{m−1}, …, 2, 1]` and `s_k ∈ {−1,+1}`.
//!   This linearity is what keeps `‖y − H·x(q)‖²` quadratic — i.e. a QUBO.
//!
//! [`Modulation::gray_to_natural`] / [`Modulation::natural_to_gray`] convert
//! per-rail between the two labelings, so ground-truth transmit bits can be
//! expressed in QUBO variable space and solver outputs can be scored as
//! wireless bits.
//!
//! Constellations are energy-normalized: every modulation has
//! `E[|x|²] = 1` ("unit gain signal", §4.2).

use hqw_math::Complex64;

/// Supported modulations (the paper evaluates all four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase-shift keying: 1 bit/symbol, real axis only.
    Bpsk,
    /// Quadrature PSK: 2 bits/symbol.
    Qpsk,
    /// Square 16-QAM: 4 bits/symbol.
    Qam16,
    /// Square 64-QAM: 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// All supported modulations, in the paper's order.
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
        }
    }

    /// Parses a [`Modulation::name`] back (`None` for unknown names) — the
    /// experiment-spec layer's inverse of `name`.
    pub fn from_name(name: &str) -> Option<Modulation> {
        Modulation::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Bits per complex symbol (= QUBO variables per user, as in the paper's
    /// sizing: a 36-variable problem is 36 BPSK / 18 QPSK / 9 16-QAM / 6
    /// 64-QAM users).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Bits on the in-phase (real) rail.
    pub fn i_bits(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 1,
            Modulation::Qam16 => 2,
            Modulation::Qam64 => 3,
        }
    }

    /// Bits on the quadrature (imaginary) rail (0 for BPSK).
    pub fn q_bits(self) -> usize {
        self.bits_per_symbol() - self.i_bits()
    }

    /// Number of constellation points.
    pub fn order(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// Energy-normalization scale: symbols are `scale ×` the odd-integer
    /// lattice so that `E[|x|²] = 1`.
    ///
    /// Lattice mean energies: BPSK 1, QPSK 2, 16-QAM 10, 64-QAM 42.
    pub fn scale(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2.0_f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10.0_f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42.0_f64.sqrt(),
        }
    }

    /// Spin weights of one rail with `m` bits: `[2^{m−1}, …, 2, 1]`
    /// (unscaled lattice units). `level = Σ w_k s_k` spans the odd integers
    /// `{−(2^m−1), …, 2^m−1}` as the spins range over `{−1,+1}^m`.
    pub fn rail_weights(m: usize) -> Vec<f64> {
        (0..m).map(|k| (1usize << (m - 1 - k)) as f64).collect()
    }

    /// Per-rail amplitude levels in lattice units, ascending
    /// (e.g. `[-3, -1, 1, 3]` for 2 bits). A 0-bit rail has the single
    /// level 0 (BPSK's quadrature rail).
    pub fn rail_levels(m: usize) -> Vec<f64> {
        if m == 0 {
            return vec![0.0];
        }
        let count = 1usize << m;
        (0..count)
            .map(|i| (2 * i as i64 - (count as i64 - 1)) as f64)
            .collect()
    }

    /// Gray-encodes a natural (binary) level index.
    pub fn gray_encode(index: usize) -> usize {
        index ^ (index >> 1)
    }

    /// Decodes a Gray code back to the natural level index.
    pub fn gray_decode(gray: usize) -> usize {
        let mut index = gray;
        let mut shift = 1;
        while (gray >> shift) > 0 {
            index ^= gray >> shift;
            shift += 1;
        }
        index
    }

    /// Modulates `bits_per_symbol` Gray-labeled bits (MSB first, I rail then
    /// Q rail) into a normalized complex symbol.
    ///
    /// # Panics
    /// Panics when `bits.len() != bits_per_symbol()` or a bit is not 0/1.
    pub fn modulate(self, bits: &[u8]) -> Complex64 {
        assert_eq!(
            bits.len(),
            self.bits_per_symbol(),
            "modulate: expected {} bits",
            self.bits_per_symbol()
        );
        assert!(bits.iter().all(|&b| b <= 1), "modulate: bits must be 0/1");
        let mi = self.i_bits();
        let i_level = Self::gray_bits_to_level(&bits[..mi]);
        let q_level = Self::gray_bits_to_level(&bits[mi..]);
        Complex64::new(i_level, q_level) * self.scale()
    }

    /// Hard-demodulates a (possibly noisy) symbol back to Gray-labeled bits.
    pub fn demodulate(self, symbol: Complex64) -> Vec<u8> {
        let lattice = symbol * (1.0 / self.scale());
        let mut bits = Self::level_to_gray_bits(lattice.re, self.i_bits());
        bits.extend(Self::level_to_gray_bits(lattice.im, self.q_bits()));
        bits
    }

    /// The full constellation as `(gray_bits, symbol)` pairs.
    pub fn constellation(self) -> Vec<(Vec<u8>, Complex64)> {
        let bps = self.bits_per_symbol();
        (0..self.order())
            .map(|code| {
                let bits: Vec<u8> = (0..bps)
                    .map(|k| ((code >> (bps - 1 - k)) & 1) as u8)
                    .collect();
                let sym = self.modulate(&bits);
                (bits, sym)
            })
            .collect()
    }

    /// Slices an arbitrary complex value to the nearest constellation point,
    /// returning `(gray_bits, symbol)`.
    pub fn slice(self, value: Complex64) -> (Vec<u8>, Complex64) {
        let bits = self.demodulate(value);
        let sym = self.modulate(&bits);
        (bits, sym)
    }

    /// Converts one symbol's Gray-labeled bits to natural (QUBO-variable)
    /// labels, rail by rail.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn gray_to_natural(self, gray_bits: &[u8]) -> Vec<u8> {
        assert_eq!(gray_bits.len(), self.bits_per_symbol());
        let mi = self.i_bits();
        let mut out = Self::relabel(&gray_bits[..mi], Self::gray_decode);
        out.extend(Self::relabel(&gray_bits[mi..], Self::gray_decode));
        out
    }

    /// Converts one symbol's natural (QUBO-variable) bits to Gray labels.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn natural_to_gray(self, natural_bits: &[u8]) -> Vec<u8> {
        assert_eq!(natural_bits.len(), self.bits_per_symbol());
        let mi = self.i_bits();
        let mut out = Self::relabel(&natural_bits[..mi], Self::gray_encode);
        out.extend(Self::relabel(&natural_bits[mi..], Self::gray_encode));
        out
    }

    /// Symbol value from natural-labeled bits — linear in the spins
    /// `s = 2q − 1`: the solver-side mapping.
    pub fn natural_bits_to_symbol(self, natural_bits: &[u8]) -> Complex64 {
        assert_eq!(natural_bits.len(), self.bits_per_symbol());
        let mi = self.i_bits();
        let wi = Self::rail_weights(mi);
        let wq = Self::rail_weights(self.q_bits());
        let mut i_level = 0.0;
        for (k, &w) in wi.iter().enumerate() {
            i_level += w * (2.0 * natural_bits[k] as f64 - 1.0);
        }
        let mut q_level = 0.0;
        for (k, &w) in wq.iter().enumerate() {
            q_level += w * (2.0 * natural_bits[mi + k] as f64 - 1.0);
        }
        Complex64::new(i_level, q_level) * self.scale()
    }

    // --- helpers -----------------------------------------------------------

    fn relabel(bits: &[u8], f: impl Fn(usize) -> usize) -> Vec<u8> {
        let m = bits.len();
        let code = bits.iter().fold(0usize, |acc, &b| (acc << 1) | b as usize);
        let relabeled = f(code);
        (0..m)
            .map(|k| ((relabeled >> (m - 1 - k)) & 1) as u8)
            .collect()
    }

    /// Gray-labeled rail bits (MSB first) → lattice amplitude level.
    fn gray_bits_to_level(bits: &[u8]) -> f64 {
        let m = bits.len();
        if m == 0 {
            return 0.0;
        }
        let gray = bits.iter().fold(0usize, |acc, &b| (acc << 1) | b as usize);
        let index = Self::gray_decode(gray);
        (2 * index as i64 - ((1i64 << m) - 1)) as f64
    }

    /// Lattice amplitude → nearest level → Gray-labeled rail bits.
    fn level_to_gray_bits(level: f64, m: usize) -> Vec<u8> {
        if m == 0 {
            return Vec::new();
        }
        let count = 1i64 << m;
        // Nearest odd-integer level index: round((level + count−1) / 2).
        let raw = ((level + (count - 1) as f64) / 2.0).round() as i64;
        let index = raw.clamp(0, count - 1) as usize;
        let gray = Self::gray_encode(index);
        (0..m).map(|k| ((gray >> (m - 1 - k)) & 1) as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_symbol_match_paper_sizing() {
        // 36 variables = 36 BPSK / 18 QPSK / 9 16-QAM / 6 64-QAM users.
        assert_eq!(36 / Modulation::Bpsk.bits_per_symbol(), 36);
        assert_eq!(36 / Modulation::Qpsk.bits_per_symbol(), 18);
        assert_eq!(36 / Modulation::Qam16.bits_per_symbol(), 9);
        assert_eq!(36 / Modulation::Qam64.bits_per_symbol(), 6);
    }

    #[test]
    fn modulate_demodulate_round_trip_all_points() {
        for m in Modulation::ALL {
            for (bits, sym) in m.constellation() {
                assert_eq!(m.demodulate(sym), bits, "{} {:?}", m.name(), bits);
            }
        }
    }

    #[test]
    fn constellations_are_unit_energy() {
        for m in Modulation::ALL {
            let pts = m.constellation();
            let mean: f64 = pts.iter().map(|(_, s)| s.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((mean - 1.0).abs() < 1e-12, "{}: E|x|²={mean}", m.name());
        }
    }

    #[test]
    fn constellation_points_are_distinct() {
        for m in Modulation::ALL {
            let pts = m.constellation();
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    assert!(
                        (pts[i].1 - pts[j].1).abs() > 1e-9,
                        "{}: duplicate points",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gray_labels_differ_in_one_bit_between_adjacent_levels() {
        // Check the I rail of 16-QAM: levels −3,−1,1,3 must have Gray labels
        // with Hamming distance 1 between neighbors.
        let m = Modulation::Qam16;
        let labels: Vec<Vec<u8>> = [-3.0, -1.0, 1.0, 3.0]
            .iter()
            .map(|&lvl| {
                let sym = Complex64::new(lvl, -3.0) * m.scale();
                m.demodulate(sym)[..2].to_vec()
            })
            .collect();
        for w in labels.windows(2) {
            let dist: usize = w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count();
            assert_eq!(
                dist, 1,
                "adjacent levels not Gray: {:?} vs {:?}",
                w[0], w[1]
            );
        }
    }

    #[test]
    fn gray_encode_decode_round_trip() {
        for i in 0..64 {
            assert_eq!(Modulation::gray_decode(Modulation::gray_encode(i)), i);
        }
    }

    #[test]
    fn natural_and_gray_labelings_are_bijective() {
        for m in Modulation::ALL {
            for (gray_bits, _) in m.constellation() {
                let natural = m.gray_to_natural(&gray_bits);
                assert_eq!(m.natural_to_gray(&natural), gray_bits);
            }
        }
    }

    #[test]
    fn natural_bits_reproduce_the_same_symbol() {
        // The solver-side linear map must agree with the modem on every point.
        for m in Modulation::ALL {
            for (gray_bits, sym) in m.constellation() {
                let natural = m.gray_to_natural(&gray_bits);
                let sym2 = m.natural_bits_to_symbol(&natural);
                assert!(
                    (sym - sym2).abs() < 1e-12,
                    "{}: {:?}: {} vs {}",
                    m.name(),
                    gray_bits,
                    sym,
                    sym2
                );
            }
        }
    }

    #[test]
    fn rail_weights_are_binary() {
        assert_eq!(Modulation::rail_weights(3), vec![4.0, 2.0, 1.0]);
        assert_eq!(Modulation::rail_weights(1), vec![1.0]);
        assert!(Modulation::rail_weights(0).is_empty());
    }

    #[test]
    fn rail_levels_are_odd_integers() {
        assert_eq!(Modulation::rail_levels(2), vec![-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(Modulation::rail_levels(0), vec![0.0]);
    }

    #[test]
    fn slicing_recovers_from_small_noise() {
        for m in Modulation::ALL {
            for (bits, sym) in m.constellation() {
                let noisy = sym + Complex64::new(0.3, -0.25) * m.scale();
                let (sliced_bits, _) = m.slice(noisy);
                assert_eq!(sliced_bits, bits, "{}: noise flipped a symbol", m.name());
            }
        }
    }

    #[test]
    fn bpsk_has_no_quadrature_component() {
        for (_, sym) in Modulation::Bpsk.constellation() {
            assert_eq!(sym.im, 0.0);
        }
        assert_eq!(Modulation::Bpsk.q_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "expected 4 bits")]
    fn modulate_rejects_wrong_length() {
        Modulation::Qam16.modulate(&[1, 0]);
    }
}
