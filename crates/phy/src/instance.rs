//! Detection-instance generation — the paper's §4.2 workload.
//!
//! > "We synthesize 10-20 (QUBO) instances of random MIMO detection for
//! > various user numbers and modulations (BPSK, QPSK, 16-QAM, and 64-QAM)
//! > with unit gain signal and unit gain wireless channel with random phase
//! > … In the experiments, we exclude the wireless noise (AWGN)."
//!
//! A [`DetectionInstance`] bundles the channel realization, the observation,
//! the transmitted ground truth (in both Gray/wireless and natural/QUBO
//! labelings), and the reduced QUBO. On noiseless instances the QUBO ground
//! state is analytically known (the transmitted bits, with ML residual 0),
//! which is what makes the paper's success-probability and TTS metrics
//! computable without search.

use crate::channel::{add_awgn, ChannelModel};
use crate::mimo::MimoSystem;
use crate::modulation::Modulation;
use crate::reduction::{reduce_to_qubo, ReducedProblem};
use hqw_math::{CMatrix, CVector, Rng64};

/// Configuration for instance synthesis.
#[derive(Debug, Clone, Copy)]
pub struct InstanceConfig {
    /// Number of transmitting users.
    pub n_users: usize,
    /// Number of base-station antennas (the paper uses `n_rx = n_users`).
    pub n_rx: usize,
    /// Modulation for all users.
    pub modulation: Modulation,
    /// Channel model (paper: [`ChannelModel::UnitGainRandomPhase`]).
    pub channel: ChannelModel,
    /// AWGN per-antenna variance (paper: 0.0 — noiseless).
    pub noise_variance: f64,
}

impl InstanceConfig {
    /// The paper's evaluation configuration for a given user count and
    /// modulation: square system, unit-gain random-phase channel, no AWGN.
    pub fn paper(n_users: usize, modulation: Modulation) -> Self {
        InstanceConfig {
            n_users,
            n_rx: n_users,
            modulation,
            channel: ChannelModel::UnitGainRandomPhase,
            noise_variance: 0.0,
        }
    }

    /// Config producing exactly `n_vars` QUBO variables (the paper sizes
    /// problems by variable count, e.g. its 36-variable Figure 6 set).
    ///
    /// # Panics
    /// Panics when `n_vars` is not divisible by the modulation's bits/symbol.
    pub fn paper_with_vars(n_vars: usize, modulation: Modulation) -> Self {
        let bps = modulation.bits_per_symbol();
        assert!(
            n_vars.is_multiple_of(bps),
            "paper_with_vars: {n_vars} variables not divisible by {bps} bits/symbol"
        );
        Self::paper(n_vars / bps, modulation)
    }

    /// Number of QUBO variables instances of this config produce.
    pub fn num_vars(&self) -> usize {
        self.n_users * self.modulation.bits_per_symbol()
    }
}

/// One MIMO detection problem with ground truth and its QUBO reduction.
#[derive(Debug, Clone)]
pub struct DetectionInstance {
    /// System description.
    pub system: MimoSystem,
    /// Channel realization.
    pub h: CMatrix,
    /// Received vector (after optional AWGN).
    pub y: CVector,
    /// Transmitted bits, Gray/wireless labeling, user-major.
    pub tx_gray_bits: Vec<u8>,
    /// Transmitted bits, natural/QUBO labeling, user-major.
    pub tx_natural_bits: Vec<u8>,
    /// The ML→QUBO reduction of `(h, y)`.
    pub reduction: ReducedProblem,
    /// Whether AWGN was injected (`false` ⇒ ground truth is exact).
    pub noisy: bool,
}

impl DetectionInstance {
    /// Synthesizes one instance.
    pub fn generate(config: &InstanceConfig, rng: &mut Rng64) -> Self {
        let system = MimoSystem::new(config.n_users, config.n_rx, config.modulation);
        let h = config.channel.generate(config.n_rx, config.n_users, rng);
        Self::from_channel(system, h, config.noise_variance, rng)
    }

    /// Synthesizes one instance over a *given* channel realization, drawing
    /// the transmitted bits (and AWGN, when `noise_variance > 0`) from `rng`.
    ///
    /// This is the assembly step shared by [`DetectionInstance::generate`]
    /// and the temporally-correlated
    /// [`ChannelTrack`](crate::channel::ChannelTrack), which synthesizes its
    /// own channel matrices; the RNG draw order (bits, then noise) is part of
    /// the determinism contract between the two.
    ///
    /// # Panics
    /// Panics when `h` does not match the system dimensions.
    pub fn from_channel(
        system: MimoSystem,
        h: CMatrix,
        noise_variance: f64,
        rng: &mut Rng64,
    ) -> Self {
        let tx_gray_bits = system.random_bits(rng);
        let x = system.modulate(&tx_gray_bits);
        let mut y = system.transmit(&h, &x);
        let noisy = noise_variance > 0.0;
        if noisy {
            add_awgn(&mut y, noise_variance, rng);
        }
        let reduction = reduce_to_qubo(&system, &h, &y);
        let tx_natural_bits = reduction.gray_to_natural(&tx_gray_bits);
        DetectionInstance {
            system,
            h,
            y,
            tx_gray_bits,
            tx_natural_bits,
            reduction,
            noisy,
        }
    }

    /// Synthesizes a batch of instances (the paper uses 10–50 per setting).
    pub fn generate_batch(
        config: &InstanceConfig,
        count: usize,
        rng: &mut Rng64,
    ) -> Vec<DetectionInstance> {
        (0..count).map(|_| Self::generate(config, rng)).collect()
    }

    /// Number of QUBO variables.
    pub fn num_vars(&self) -> usize {
        self.reduction.qubo.num_vars()
    }

    /// QUBO energy of the transmitted bits. On noiseless instances this is
    /// the exact ground energy (`= −ml_offset`, residual 0); on noisy
    /// instances it upper-bounds the ground energy.
    pub fn tx_energy(&self) -> f64 {
        self.reduction.qubo.energy(&self.tx_natural_bits)
    }

    /// Ground energy of the QUBO.
    ///
    /// # Panics
    /// Panics for noisy instances, where the transmitted vector need not be
    /// the ML solution; certify with an exact solver instead.
    pub fn ground_energy(&self) -> f64 {
        assert!(
            !self.noisy,
            "ground_energy: only exact for noiseless instances"
        );
        self.tx_energy()
    }

    /// Scores solver output (natural-labeled bits) as a wireless bit error
    /// rate against the transmitted data.
    pub fn score_ber(&self, natural_bits: &[u8]) -> f64 {
        let gray = self.reduction.natural_to_gray(natural_bits);
        crate::metrics::bit_error_rate(&self.tx_gray_bits, &gray)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqw_math::energy_eq;
    use hqw_qubo::exact::exhaustive_minimum;

    #[test]
    fn paper_config_matches_section_4_2() {
        let c = InstanceConfig::paper(8, Modulation::Qam16);
        assert_eq!(c.n_rx, 8);
        assert_eq!(c.noise_variance, 0.0);
        assert_eq!(c.channel, ChannelModel::UnitGainRandomPhase);
        assert_eq!(c.num_vars(), 32);
    }

    #[test]
    fn paper_with_vars_sizes_all_modulations() {
        for m in Modulation::ALL {
            let c = InstanceConfig::paper_with_vars(36, m);
            assert_eq!(c.num_vars(), 36, "{}", m.name());
        }
    }

    #[test]
    fn noiseless_ground_energy_is_negative_ml_offset() {
        let mut rng = Rng64::new(101);
        for m in Modulation::ALL {
            let c = InstanceConfig::paper_with_vars(12, m);
            let inst = DetectionInstance::generate(&c, &mut rng);
            assert!(
                energy_eq(inst.ground_energy(), -inst.reduction.ml_offset),
                "{}: ground {} vs −offset {}",
                m.name(),
                inst.ground_energy(),
                -inst.reduction.ml_offset
            );
        }
    }

    #[test]
    fn noiseless_ground_state_verified_by_enumeration() {
        let mut rng = Rng64::new(103);
        let c = InstanceConfig::paper_with_vars(12, Modulation::Qam16);
        let inst = DetectionInstance::generate(&c, &mut rng);
        let (best, e) = exhaustive_minimum(&inst.reduction.qubo);
        assert!(energy_eq(e, inst.ground_energy()));
        assert_eq!(best, inst.tx_natural_bits);
    }

    #[test]
    fn score_ber_zero_on_truth_positive_on_flip() {
        let mut rng = Rng64::new(105);
        let c = InstanceConfig::paper(4, Modulation::Qpsk);
        let inst = DetectionInstance::generate(&c, &mut rng);
        assert_eq!(inst.score_ber(&inst.tx_natural_bits), 0.0);
        let mut flipped = inst.tx_natural_bits.clone();
        flipped[0] ^= 1;
        assert!(inst.score_ber(&flipped) > 0.0);
    }

    #[test]
    fn batch_instances_are_distinct() {
        let mut rng = Rng64::new(107);
        let c = InstanceConfig::paper(4, Modulation::Qpsk);
        let batch = DetectionInstance::generate_batch(&c, 5, &mut rng);
        assert_eq!(batch.len(), 5);
        for i in 0..5 {
            for j in i + 1..5 {
                assert!(
                    batch[i].h.max_abs_diff(&batch[j].h) > 1e-9,
                    "instances {i} and {j} share a channel"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "only exact for noiseless")]
    fn noisy_instances_refuse_ground_energy() {
        let mut rng = Rng64::new(109);
        let mut c = InstanceConfig::paper(4, Modulation::Qpsk);
        c.noise_variance = 0.1;
        let inst = DetectionInstance::generate(&c, &mut rng);
        let _ = inst.ground_energy();
    }

    #[test]
    fn deterministic_per_seed() {
        let c = InstanceConfig::paper(6, Modulation::Qam16);
        let a = DetectionInstance::generate(&c, &mut Rng64::new(7));
        let b = DetectionInstance::generate(&c, &mut Rng64::new(7));
        assert_eq!(a.tx_gray_bits, b.tx_gray_bits);
        assert!(a.h.max_abs_diff(&b.h) == 0.0);
    }
}
