//! Cross-detector equivalence properties.
//!
//! The paper's comparison only means something if every arm solves the *same*
//! problem: at high SNR on small instances the near-optimal detectors —
//! sphere decoder, exhaustive-width K-best, and the SA-backed QUBO path —
//! must reproduce the exact ML symbol decisions, and every [`Detector`] trait
//! impl must agree with the free-function pipeline it wraps.

use hqw_math::Rng64;
use hqw_phy::channel::{add_awgn, snr_db_to_noise_variance, ChannelModel};
use hqw_phy::detect::{
    instance_fingerprint, Detector, KBest, MlBruteForce, Mmse, QuboDetector, SphereDecoder,
    ZeroForcing,
};
use hqw_phy::mimo::MimoSystem;
use hqw_phy::modulation::Modulation;
use hqw_phy::reduction::reduce_to_qubo;
use hqw_qubo::sa::{sample_qubo, SaParams};
use proptest::prelude::*;

/// A small noisy scenario at the given SNR.
struct Scenario {
    system: MimoSystem,
    h: hqw_math::CMatrix,
    y: hqw_math::CVector,
    tx_bits: Vec<u8>,
}

fn scenario(m: Modulation, n: usize, snr_db: f64, seed: u64) -> Scenario {
    let mut rng = Rng64::new(seed);
    let system = MimoSystem::new(n, n, m);
    let h = ChannelModel::UnitGainRandomPhase.generate(n, n, &mut rng);
    let tx_bits = system.random_bits(&mut rng);
    let x = system.modulate(&tx_bits);
    let mut y = system.transmit(&h, &x);
    add_awgn(&mut y, snr_db_to_noise_variance(snr_db, n), &mut rng);
    Scenario {
        system,
        h,
        y,
        tx_bits,
    }
}

fn quick_sa() -> SaParams {
    SaParams {
        sweeps: 96,
        num_reads: 16,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At high SNR on small instances, the exact and near-exact detectors
    /// all reproduce the ML brute-force symbol decisions.
    #[test]
    fn tree_and_qubo_detectors_match_ml_at_high_snr(
        seed in any::<u64>(),
        m in prop_oneof![Just(Modulation::Bpsk), Just(Modulation::Qpsk)],
    ) {
        let sc = scenario(m, 3, 22.0, seed);
        let ml = MlBruteForce.detect(&sc.system, &sc.h, &sc.y);
        let ml_metric = sc.system.ml_metric(&sc.h, &sc.y, &ml.symbols);
        for (name, result) in [
            ("SD", SphereDecoder::exact().detect(&sc.system, &sc.h, &sc.y)),
            ("K-best", KBest::new(4096).detect(&sc.system, &sc.h, &sc.y)),
            (
                "QUBO-SA",
                QuboDetector::with_params(quick_sa(), 17).detect(&sc.system, &sc.h, &sc.y),
            ),
        ] {
            // Exact metric agreement always; decision agreement unless the
            // instance has an exact tie (measure zero under AWGN).
            let metric = sc.system.ml_metric(&sc.h, &sc.y, &result.symbols);
            prop_assert!(
                (metric - ml_metric).abs() < 1e-9,
                "{name}: metric {metric} vs ML {ml_metric}"
            );
            prop_assert_eq!(&result.gray_bits, &ml.gray_bits, "{} decision differs", name);
        }
    }

    /// High-SNR detection recovers the transmitted bits for every family —
    /// the BER-floor sanity the scenario engine's top SNR point rests on.
    #[test]
    fn every_family_recovers_bits_at_very_high_snr(seed in any::<u64>()) {
        let sc = scenario(Modulation::Qpsk, 3, 40.0, seed);
        let nv = snr_db_to_noise_variance(40.0, 3);
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(ZeroForcing),
            Box::new(Mmse::new(nv)),
            Box::new(SphereDecoder::exact()),
            Box::new(KBest::new(8)),
            Box::new(QuboDetector::with_params(quick_sa(), 3)),
        ];
        for det in &detectors {
            let result = det.detect(&sc.system, &sc.h, &sc.y);
            prop_assert_eq!(&result.gray_bits, &sc.tx_bits, "{} failed", det.name());
        }
    }

    /// The `QuboDetector` trait impl is exactly the free-function pipeline:
    /// `reduce_to_qubo` → `sample_qubo` with the fingerprint-derived seed.
    #[test]
    fn qubo_detector_matches_free_function_pipeline(
        seed in any::<u64>(),
        base in any::<u64>(),
    ) {
        let sc = scenario(Modulation::Qam16, 2, 12.0, seed);
        let detector = QuboDetector::with_params(quick_sa(), base);
        let via_trait = detector.detect(&sc.system, &sc.h, &sc.y);

        let reduction = reduce_to_qubo(&sc.system, &sc.h, &sc.y);
        let mut rng = Rng64::new(base ^ instance_fingerprint(&sc.h, &sc.y));
        let samples = sample_qubo(&reduction.qubo, &quick_sa(), &mut rng);
        let best = samples.best().expect("SA returns reads");
        prop_assert_eq!(&via_trait.gray_bits, &reduction.natural_to_gray(&best.bits));
    }

    /// Trait-object dispatch is transparent: boxed detectors return exactly
    /// what the concrete values return, including metadata.
    #[test]
    fn boxed_dispatch_is_transparent(seed in any::<u64>()) {
        let sc = scenario(Modulation::Qpsk, 3, 10.0, seed);
        let concrete = SphereDecoder::with_budget(5_000).detect(&sc.system, &sc.h, &sc.y);
        let boxed: Box<dyn Detector> = Box::new(SphereDecoder::with_budget(5_000));
        prop_assert_eq!(boxed.detect(&sc.system, &sc.h, &sc.y), concrete);

        let concrete = KBest::new(4).detect(&sc.system, &sc.h, &sc.y);
        let boxed: Box<dyn Detector> = Box::new(KBest::new(4));
        prop_assert_eq!(boxed.detect(&sc.system, &sc.h, &sc.y), concrete);
    }

    /// Every detector's output is internally consistent: symbols lie on the
    /// constellation and demodulate to the reported Gray bits.
    #[test]
    fn results_are_internally_consistent(seed in any::<u64>()) {
        let sc = scenario(Modulation::Qam16, 3, 8.0, seed);
        let nv = snr_db_to_noise_variance(8.0, 3);
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(ZeroForcing),
            Box::new(Mmse::new(nv)),
            Box::new(SphereDecoder::exact()),
            Box::new(KBest::new(8)),
            Box::new(QuboDetector::with_params(quick_sa(), 5)),
        ];
        let points = Modulation::Qam16.constellation();
        for det in &detectors {
            let result = det.detect(&sc.system, &sc.h, &sc.y);
            prop_assert_eq!(
                &sc.system.demodulate(&result.symbols),
                &result.gray_bits,
                "{}: bits/symbols disagree",
                det.name()
            );
            for u in 0..sc.system.n_tx {
                prop_assert!(
                    points.iter().any(|(_, p)| (result.symbols[u] - *p).abs() < 1e-9),
                    "{}: symbol {u} off-constellation",
                    det.name()
                );
            }
        }
    }
}
