//! Property-based tests for the PHY substrate.
//!
//! The central property: the ML→QUBO reduction is *exact* — for random
//! channels, observations and assignments, the QUBO energy plus offset
//! equals the maximum-likelihood residual computed directly.

use hqw_math::Rng64;
use hqw_phy::channel::{ChannelModel, ChannelTrack, TrackConfig};
use hqw_phy::instance::{DetectionInstance, InstanceConfig};
use hqw_phy::mimo::MimoSystem;
use hqw_phy::modulation::Modulation;
use hqw_phy::reduction::reduce_to_qubo;
use proptest::prelude::*;

fn any_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduction_is_exact_on_random_assignments(
        seed in any::<u64>(),
        m in any_modulation(),
        n_users in 1usize..5,
        noisy in any::<bool>(),
    ) {
        let mut rng = Rng64::new(seed);
        let sys = MimoSystem::new(n_users, n_users, m);
        let h = ChannelModel::RayleighIid.generate(n_users, n_users, &mut rng);
        let tx = sys.random_bits(&mut rng);
        let x = sys.modulate(&tx);
        let mut y = sys.transmit(&h, &x);
        if noisy {
            hqw_phy::channel::add_awgn(&mut y, 0.3, &mut rng);
        }
        let reduced = reduce_to_qubo(&sys, &h, &y);
        let n_vars = sys.bits_per_use();
        for _ in 0..6 {
            let bits: Vec<u8> = (0..n_vars).map(|_| rng.next_bool() as u8).collect();
            let cand = reduced.bits_to_symbols(&bits);
            let direct = sys.ml_metric(&h, &y, &cand);
            let via_qubo = reduced.ml_metric(&bits);
            let tol = 1e-8 * (1.0 + direct.abs());
            prop_assert!((direct - via_qubo).abs() < tol,
                "{}: direct {direct} vs qubo {via_qubo}", m.name());
        }
    }

    #[test]
    fn modulate_demodulate_round_trip(seed in any::<u64>(), m in any_modulation(),
                                      n_users in 1usize..8) {
        let mut rng = Rng64::new(seed);
        let sys = MimoSystem::new(n_users, n_users, m);
        let bits = sys.random_bits(&mut rng);
        let x = sys.modulate(&bits);
        prop_assert_eq!(sys.demodulate(&x), bits);
    }

    #[test]
    fn gray_natural_relabeling_is_bijective(seed in any::<u64>(), m in any_modulation()) {
        let mut rng = Rng64::new(seed);
        let bps = m.bits_per_symbol();
        let bits: Vec<u8> = (0..bps).map(|_| rng.next_bool() as u8).collect();
        let nat = m.gray_to_natural(&bits);
        prop_assert_eq!(m.natural_to_gray(&nat), bits.clone());
        // And both labelings denote the same symbol.
        let via_gray = m.modulate(&bits);
        let via_natural = m.natural_bits_to_symbol(&nat);
        prop_assert!((via_gray - via_natural).abs() < 1e-12);
    }

    #[test]
    fn noiseless_instances_have_zero_residual_truth(
        seed in any::<u64>(),
        m in any_modulation(),
        n_users in 1usize..5,
    ) {
        let mut rng = Rng64::new(seed);
        let cfg = InstanceConfig::paper(n_users, m);
        let inst = DetectionInstance::generate(&cfg, &mut rng);
        prop_assert!(inst.reduction.ml_metric(&inst.tx_natural_bits) < 1e-8);
        prop_assert_eq!(inst.score_ber(&inst.tx_natural_bits), 0.0);
    }

    #[test]
    fn unit_gain_channels_have_unit_entries(seed in any::<u64>(), n in 1usize..10) {
        let mut rng = Rng64::new(seed);
        let h = ChannelModel::UnitGainRandomPhase.generate(n, n, &mut rng);
        for r in 0..n {
            for c in 0..n {
                prop_assert!((h[(r, c)].abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn channel_track_rho_zero_is_the_iid_batch_generator(
        seed in any::<u64>(),
        m in any_modulation(),
        n_users in 1usize..4,
        noisy in any::<bool>(),
    ) {
        // With ρ = 0 every frame's channel IS the innovation draw, so the
        // track must match DetectionInstance::generate_batch on the i.i.d.
        // Rayleigh config bit for bit — same channel, bits, noise, QUBO.
        let cfg = TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: m,
            rho: 0.0,
            noise_variance: if noisy { 0.3 } else { 0.0 },
        };
        let frames: Vec<_> = ChannelTrack::new(cfg, seed).take(3).collect();
        let batch = DetectionInstance::generate_batch(
            &cfg.instance_config(), 3, &mut Rng64::new(seed));
        for (a, b) in frames.iter().zip(&batch) {
            prop_assert_eq!(a.h.max_abs_diff(&b.h), 0.0);
            prop_assert_eq!(&a.tx_gray_bits, &b.tx_gray_bits);
            prop_assert_eq!(&a.tx_natural_bits, &b.tx_natural_bits);
            prop_assert_eq!(a.y.sub(&b.y).norm_sqr(), 0.0);
            prop_assert_eq!(a.noisy, b.noisy);
        }
    }

    #[test]
    fn channel_track_rho_one_freezes_the_channel(
        seed in any::<u64>(),
        m in any_modulation(),
        n_users in 1usize..4,
    ) {
        // With ρ = 1 the innovation coefficient √(1−ρ²) vanishes: every
        // frame repeats frame 0's channel exactly, while the transmitted
        // data keeps evolving along the same RNG stream.
        let cfg = TrackConfig {
            n_users,
            n_rx: n_users,
            modulation: m,
            rho: 1.0,
            noise_variance: 0.0,
        };
        let frames: Vec<_> = ChannelTrack::new(cfg, seed).take(4).collect();
        for f in &frames[1..] {
            prop_assert_eq!(frames[0].h.max_abs_diff(&f.h), 0.0);
        }
        // Noiseless frames keep the exact-ground-truth invariant on the
        // frozen channel: the QUBO ground state is the transmitted vector.
        for f in &frames {
            prop_assert!(f.reduction.ml_metric(&f.tx_natural_bits) < 1e-8);
        }
    }

    #[test]
    fn llr_signs_agree_with_demodulation(seed in any::<u64>(), m in any_modulation()) {
        let mut rng = Rng64::new(seed);
        // A mildly perturbed constellation point: LLR signs must agree with
        // the hard demodulation of the same point.
        let pts = m.constellation();
        let (_, point) = &pts[rng.next_index(pts.len())];
        let perturbed = *point
            + hqw_math::Complex64::new(rng.next_gaussian(), rng.next_gaussian()) * (0.05 * m.scale());
        let hard = m.demodulate(perturbed);
        let llrs = hqw_phy::llr::symbol_llrs(m, perturbed, 0.1);
        for (k, &b) in hard.iter().enumerate() {
            if llrs[k].abs() > 1e-9 {
                let soft = if llrs[k] > 0.0 { 0u8 } else { 1u8 };
                prop_assert_eq!(soft, b, "bit {}", k);
            }
        }
    }
}
