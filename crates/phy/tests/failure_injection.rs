//! Failure-injection tests: degenerate channels and hostile inputs must fail
//! loudly (panics with clear messages), never silently corrupt results.

use hqw_math::{CMatrix, CVector, Complex64, Rng64};
use hqw_phy::channel::ChannelModel;
use hqw_phy::detect::{Detector, KBest, SphereDecoder, ZeroForcing};
use hqw_phy::mimo::MimoSystem;
use hqw_phy::modulation::Modulation;
use hqw_phy::reduction::reduce_to_qubo;

/// A rank-deficient channel: user 1 is a perfect copy of user 0.
fn rank_deficient(n: usize, rng: &mut Rng64) -> CMatrix {
    let h = ChannelModel::UnitGainRandomPhase.generate(n, n, rng);
    CMatrix::from_fn(n, n, |r, c| if c == 1 { h[(r, 0)] } else { h[(r, c)] })
}

#[test]
fn zero_forcing_fails_loudly_on_singular_channels() {
    let mut rng = Rng64::new(3);
    let sys = MimoSystem::new(4, 4, Modulation::Qpsk);
    let h = rank_deficient(4, &mut rng);
    let bits = sys.random_bits(&mut rng);
    let y = sys.transmit(&h, &sys.modulate(&bits));
    let result = std::panic::catch_unwind(|| ZeroForcing.detect(&sys, &h, &y));
    assert!(
        result.is_err(),
        "ZF must not return silently on a rank-deficient channel"
    );
}

#[test]
fn reduction_still_works_on_singular_channels() {
    // The QUBO reduction needs no inversion: a rank-deficient channel just
    // produces a degenerate QUBO (multiple global optima), not a failure.
    let mut rng = Rng64::new(5);
    let sys = MimoSystem::new(3, 3, Modulation::Qpsk);
    let h = rank_deficient(3, &mut rng);
    let bits = sys.random_bits(&mut rng);
    let y = sys.transmit(&h, &sys.modulate(&bits));
    let reduced = reduce_to_qubo(&sys, &h, &y);
    // Transmitted bits still have exactly zero residual.
    let natural = reduced.gray_to_natural(&bits);
    assert!(reduced.ml_metric(&natural) < 1e-9);
    // And because users 0/1 are indistinguishable, swapping their symbols
    // must give another zero-residual assignment (degeneracy, not error).
    let bps = sys.modulation.bits_per_symbol();
    let mut swapped = natural.clone();
    for k in 0..bps {
        swapped.swap(k, bps + k);
    }
    assert!(reduced.ml_metric(&swapped) < 1e-9);
}

#[test]
fn tree_detectors_survive_near_singular_channels() {
    // An almost-rank-deficient channel (tiny perturbation keeps QR valid):
    // detectors must return well-formed constellation decisions.
    let mut rng = Rng64::new(7);
    let sys = MimoSystem::new(3, 3, Modulation::Qam16);
    let base = rank_deficient(3, &mut rng);
    let h = CMatrix::from_fn(3, 3, |r, c| {
        base[(r, c)] + Complex64::new(rng.next_gaussian(), rng.next_gaussian()) * 1e-3
    });
    let bits = sys.random_bits(&mut rng);
    let y = sys.transmit(&h, &sys.modulate(&bits));
    for det in [&SphereDecoder::exact() as &dyn Detector, &KBest::new(8)] {
        let out = det.detect(&sys, &h, &y);
        assert_eq!(out.gray_bits.len(), sys.bits_per_use(), "{}", det.name());
        // Decisions are genuine constellation points.
        let points = sys.modulation.constellation();
        for u in 0..3 {
            assert!(
                points
                    .iter()
                    .any(|(_, p)| (out.symbols[u] - *p).abs() < 1e-9),
                "{}: off-constellation output",
                det.name()
            );
        }
    }
}

#[test]
fn zero_observation_is_handled() {
    // All-zero receive vector (e.g. erased slot): reduction and detectors
    // should process it as a legitimate observation.
    let mut rng = Rng64::new(9);
    let sys = MimoSystem::new(2, 2, Modulation::Qpsk);
    let h = ChannelModel::UnitGainRandomPhase.generate(2, 2, &mut rng);
    let y = CVector::zeros(2);
    let reduced = reduce_to_qubo(&sys, &h, &y);
    // ml_offset is ‖y‖² + Σ A_ii ≥ 0 and every assignment has a finite,
    // non-negative residual.
    for code in 0..16u32 {
        let bits: Vec<u8> = (0..4).map(|k| ((code >> k) & 1) as u8).collect();
        let m = reduced.ml_metric(&bits);
        assert!(m.is_finite() && m >= -1e-9);
    }
    let out = SphereDecoder::exact().detect(&sys, &h, &y);
    assert_eq!(out.gray_bits.len(), 4);
}
