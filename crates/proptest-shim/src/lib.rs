//! A minimal, deterministic, std-only drop-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment is offline, so the real crates-io `proptest` cannot
//! be vendored. This shim keeps the test sources unchanged (`use
//! proptest::prelude::*;` + `proptest! { ... }`) while implementing the
//! machinery locally:
//!
//! * strategies are plain samplers (no shrinking) drawn from a splitmix64
//!   stream seeded per `(test name, case index)`, so failures reproduce
//!   bit-exactly across runs and machines;
//! * `prop_assert!`/`prop_assert_eq!` report the failing case index;
//! * `prop_assume!` rejects the case without failing the test.

use std::fmt::Debug;
use std::ops::Range;

/// Why a test case did not complete successfully.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod test_runner {
    //! The deterministic case-level RNG.

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A tiny deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one `(test name, case index)` pair.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut state = h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15));
            // Warm up so nearby case indices decorrelate.
            splitmix64(&mut state);
            TestRng { state }
        }

        /// Next raw 64-bit draw.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)` (multiply-shift; bias is irrelevant here).
        #[inline]
        pub fn next_below(&mut self, n: u64) -> u64 {
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A value generator. Unlike real proptest there is no shrinking: a strategy
/// is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (resampling up to a bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): predicate rejected 1000 samples",
            self.whence
        )
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Builds a union; panics when empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Boxes a strategy for use in [`Union`] (unsized coercion helper for the
/// `prop_oneof!` macro).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and lengths in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector strategy over a length range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.next_below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespaced re-exports matching `proptest::prop::*` paths.
    pub use crate::collection;
}

/// The macro-driven test harness.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner_rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut runner_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} of {}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fallible assertion: fails the current case (with formatting) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

pub mod prelude {
    //! Everything the test files import.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.5f64..4.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.5..4.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..2, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn oneof_and_map_compose(
            m in prop_oneof![Just(1u64), Just(2), Just(3)],
            c in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((1..=3).contains(&m));
            prop_assert!((0.0..2.0).contains(&c));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
