//! Classical simulated annealing (SA) sampler.
//!
//! SA is the classical counterpart of the quantum annealers in `hqw-anneal`:
//! single-spin Metropolis dynamics on the Ising form with a geometric
//! inverse-temperature ramp. It serves as (a) the classical reference point
//! for the hybrid comparisons, and (b) the workhorse for certifying ground
//! energies on instances too large to enumerate.
//!
//! The sweep kernel runs on the flat [`CsrIsing`] representation with
//! incrementally-maintained local fields ([`LocalFieldState`]): a proposal
//! costs O(1) and only *accepted* flips pay an O(degree) cache update, so a
//! sweep is `O(n + accepted·deg)` instead of `O(n·deg)`. Reads are
//! independent and fan out across threads with per-read seeds derived from
//! the caller's RNG, so results are bit-identical for any thread count.

use crate::csr::{BitSpins, CsrIsing, LocalFieldState};
use crate::ising::Ising;
use crate::model::Qubo;
use crate::solution::{spins_to_bits, SampleSet};
use hqw_math::fastmath::exp_fast;
use hqw_math::parallel::parallel_map_indexed;
use hqw_math::Rng64;

/// Which sweep kernel a sampler runs.
///
/// The two modes trade determinism guarantees for speed:
///
/// * [`SweepKernel::Exact`] (the default) — the historical serial kernel:
///   f64 local fields, index-ordered proposals, one RNG draw per uphill
///   proposal. Its outputs are **bit-identical** across releases, thread
///   counts and storage-layout changes (regression-pinned by golden tests).
/// * [`SweepKernel::Fast`] — the optimized kernel: bit-packed spins
///   (64/`u64`), single-precision local fields with periodic exact
///   refreshes, graph-colored proposal order, and a rejection cutoff that
///   skips the `exp`/RNG draw for hopeless uphill moves. It promises
///   **statistical equivalence only** (same energy distribution, not the
///   same bits); final energies are always recomputed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepKernel {
    /// Bit-identical deterministic kernel (default).
    #[default]
    Exact,
    /// Vectorized statistical-equivalence kernel.
    Fast,
}

impl SweepKernel {
    /// Canonical lower-case name (`"exact"` / `"fast"`), as used by the
    /// experiment-spec JSON codec.
    pub fn name(&self) -> &'static str {
        match self {
            SweepKernel::Exact => "exact",
            SweepKernel::Fast => "fast",
        }
    }

    /// Parses a canonical name.
    ///
    /// # Errors
    /// Returns the offending string on anything but `"exact"` / `"fast"`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "exact" => Ok(SweepKernel::Exact),
            "fast" => Ok(SweepKernel::Fast),
            other => Err(format!("unknown sweep kernel {other:?}")),
        }
    }
}

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Initial inverse temperature `β₀` (hot).
    pub beta_initial: f64,
    /// Final inverse temperature `β₁` (cold).
    pub beta_final: f64,
    /// Number of full sweeps over all spins.
    pub sweeps: usize,
    /// Number of independent reads.
    pub num_reads: usize,
    /// Worker threads for parallel reads (1 = serial, 0 = all available
    /// cores). Results are bit-identical for any value.
    pub threads: usize,
    /// Sweep kernel: bit-identical [`SweepKernel::Exact`] (default) or the
    /// vectorized, statistically-equivalent [`SweepKernel::Fast`].
    pub kernel: SweepKernel,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            beta_initial: 0.1,
            beta_final: 10.0,
            sweeps: 128,
            num_reads: 32,
            threads: 1,
            kernel: SweepKernel::Exact,
        }
    }
}

impl SaParams {
    /// Validates parameter ranges.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint: non-positive or
    /// non-finite betas, `beta_final < beta_initial`, zero sweeps, or zero
    /// reads.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.beta_initial > 0.0 && self.beta_initial.is_finite()) {
            return Err("SaParams: beta_initial must be > 0".to_string());
        }
        if !(self.beta_final >= self.beta_initial && self.beta_final.is_finite()) {
            return Err("SaParams: beta_final must be ≥ beta_initial".to_string());
        }
        if self.sweeps == 0 {
            return Err("SaParams: sweeps must be > 0".to_string());
        }
        if self.num_reads == 0 {
            return Err("SaParams: num_reads must be > 0".to_string());
        }
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    /// Deprecated in spirit: new code should propagate [`SaParams::validate`]
    /// errors instead (the kernel entry points keep this for their
    /// assert-style contracts).
    ///
    /// # Panics
    /// Panics with the [`SaParams::validate`] message on any invalid field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Running-best energy trajectory of one SA read, sampled at sweep
/// boundaries.
///
/// Index `k` of the trajectory is the lowest Ising energy seen after `k`
/// full sweeps; index 0 is the start state's energy. This is the
/// *sweeps-to-solution* instrument for warm-start studies: the streaming
/// engine compares how many sweeps a warm-started read needs to match a
/// cold-started read's final quality.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTrace {
    /// `best[k]` = lowest tracked energy after `k` sweeps (`best[0]` = the
    /// start state's energy). Non-increasing by construction.
    pub best_by_sweep: Vec<f64>,
}

impl SweepTrace {
    /// Lowest energy seen over the whole read.
    ///
    /// # Panics
    /// Panics on an empty trajectory (never produced by the SA kernels).
    pub fn best_energy(&self) -> f64 {
        *self
            .best_by_sweep
            .last()
            .expect("SweepTrace: empty trajectory")
    }

    /// Number of sweeps needed to first reach `target` energy (within a
    /// relative tolerance), or `None` when the read never got there.
    /// 0 means the start state already met the target.
    pub fn sweeps_to_reach(&self, target: f64) -> Option<usize> {
        let tol = 1e-9 * (1.0 + target.abs());
        self.best_by_sweep.iter().position(|&e| e <= target + tol)
    }

    /// Sweeps needed to first attain this read's own final best energy.
    pub fn sweeps_to_best(&self) -> usize {
        self.sweeps_to_reach(self.best_energy())
            .expect("SweepTrace: best energy unreachable")
    }
}

/// One SA read on a CSR Ising model starting from `start` spins.
///
/// Returns the final [`LocalFieldState`], whose tracked
/// [`LocalFieldState::energy`] is the Ising energy of the returned spins —
/// callers report energies without an O(n²) recompute.
///
/// # Panics
/// Panics on invalid parameters or a start-length mismatch.
pub fn sa_read_csr(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> LocalFieldState {
    sa_read_impl(csr, params, start, rng, None)
}

/// One SA read that also records its running-best energy per sweep.
///
/// The Metropolis dynamics (and RNG consumption) are identical to
/// [`sa_read_csr`]; the trace is a pure observation, so the returned state
/// is bit-identical to the untraced kernel on the same inputs.
///
/// # Panics
/// Panics on invalid parameters or a start-length mismatch.
pub fn sa_read_csr_traced(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> (LocalFieldState, SweepTrace) {
    let mut best_by_sweep = Vec::with_capacity(params.sweeps + 1);
    let state = sa_read_impl(csr, params, start, rng, Some(&mut best_by_sweep));
    (state, SweepTrace { best_by_sweep })
}

fn sa_read_impl(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
    mut trace: Option<&mut Vec<f64>>,
) -> LocalFieldState {
    params.validate_or_panic();
    let n = csr.num_vars();
    assert_eq!(start.len(), n, "sa_read_csr: start length mismatch");
    let mut state = LocalFieldState::new(csr, start.to_vec());
    let mut best = state.energy();
    if let Some(t) = trace.as_deref_mut() {
        t.push(best);
    }
    if n == 0 {
        return state;
    }
    // Geometric β ladder: β_t = β₀ · r^t with r chosen to land on β₁.
    let ratio = if params.sweeps > 1 {
        (params.beta_final / params.beta_initial).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let mut beta = params.beta_initial;
    for _ in 0..params.sweeps {
        for k in 0..n {
            let delta = state.flip_delta(k);
            if delta <= 0.0 || rng.next_f64() < (-beta * delta).exp() {
                // Reusing the proposal's ΔE (instead of recomputing it
                // inside `flip`) adds nothing and removes nothing from the
                // float stream: bit-identical.
                state.flip_with_delta(csr, k, delta);
            }
        }
        beta *= ratio;
        if let Some(t) = trace.as_deref_mut() {
            best = best.min(state.energy());
            t.push(best);
        }
    }
    state
}

/// Fast-kernel cadence for rebuilding the f32 field cache (and re-anchoring
/// the running energy estimate) from scratch.
const FAST_FIELD_REFRESH_SWEEPS: usize = 64;

/// Uphill moves with `β·ΔE` above this are rejected without spending an RNG
/// draw + `exp` (acceptance probability < e⁻³⁰ ≈ 9·10⁻¹⁴ — statistically
/// indistinguishable from zero).
const FAST_REJECT_CUTOFF: f64 = 30.0;

/// One Fast-kernel SA read: bit-packed spins, f32 local fields with periodic
/// exact refreshes, graph-colored proposal order. Returns `(spins, energy)`
/// where the energy is recomputed **exactly** from the final spins.
///
/// Statistically equivalent to [`sa_read_csr`] (same proposal density, same
/// schedule, acceptance probabilities within f32 rounding) but not
/// bit-identical to it, and RNG consumption differs — use only where the
/// caller opted into [`SweepKernel::Fast`].
///
/// # Panics
/// Panics on invalid parameters or a start-length mismatch.
pub fn sa_read_fast(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> (Vec<i8>, f64) {
    sa_read_fast_impl(csr, params, start, rng, None)
}

/// [`sa_read_fast`] that also records a running-best trace. Trace entries
/// between refresh points come from the f32 energy estimate (exactly
/// re-anchored every `FAST_FIELD_REFRESH_SWEEPS` sweeps and at the end),
/// so they are approximate — within f32 accumulation error — but the
/// non-increasing invariant and the final energy are exact.
pub fn sa_read_fast_traced(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> (Vec<i8>, f64, SweepTrace) {
    let mut best_by_sweep = Vec::with_capacity(params.sweeps + 1);
    let (spins, energy) = sa_read_fast_impl(csr, params, start, rng, Some(&mut best_by_sweep));
    (spins, energy, SweepTrace { best_by_sweep })
}

fn sa_read_fast_impl(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
    mut trace: Option<&mut Vec<f64>>,
) -> (Vec<i8>, f64) {
    params.validate_or_panic();
    let n = csr.num_vars();
    assert_eq!(start.len(), n, "sa_read_fast: start length mismatch");
    let mut spins = BitSpins::from_spins(start);
    let mut h_eff = vec![0.0f32; n];
    csr.fill_local_fields_f32(&spins, &mut h_eff);
    let mut energy = csr.energy(start);
    let mut best = energy;
    if let Some(t) = trace.as_deref_mut() {
        t.push(best);
    }
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let coloring = csr.coloring();
    let traced = trace.is_some();
    let ratio = if params.sweeps > 1 {
        (params.beta_final / params.beta_initial).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let order = coloring.order();
    // On a complete graph the greedy coloring degenerates to singleton
    // classes in index order, so the sweep order is the identity — which
    // unlocks the chunked scan below (contiguous field loads, packed sign
    // bits straight off one word).
    let identity_order = order.iter().enumerate().all(|(idx, &v)| v as usize == idx);
    // Mean |h| steers the frozen-sweep scan below; refreshed with the field
    // cache (a heuristic only — per-spin decisions stay exact).
    let mean_abs_h =
        |h: &[f32]| h.iter().map(|&f| f.abs() as f64).sum::<f64>() / h.len().max(1) as f64;
    let mut h_scale = mean_abs_h(&h_eff);
    let mut beta = params.beta_initial;
    for sweep in 1..=params.sweeps {
        let beta_f32 = beta as f32;
        // Full proposal at spin `k` — shared by both sweep paths below.
        macro_rules! propose {
            ($k:expr) => {{
                let k = $k;
                // s·h via a sign-bit XOR (no convert, no multiply); the
                // whole filter chain below stays in f32 — only the rare
                // boundary-octave fallback promotes to f64.
                let sh = spins.apply_sign_f32(k, h_eff[k]);
                let delta = -2.0 * sh;
                let accept = if delta <= 0.0 {
                    true
                } else {
                    let bd = beta_f32 * delta;
                    if bd > FAST_REJECT_CUTOFF as f32 {
                        false
                    } else {
                        // Metropolis test `u < e^{-βΔ}` resolved in the log2
                        // domain: the raw draw r pins u = (r >> 11)·2⁻⁵³ into
                        // [2^{-lz-1}, 2^{-lz}) where lz = leading zeros of r,
                        // so comparing −lz against t = −βΔ·log₂e decides all
                        // but the one boundary octave without evaluating the
                        // exponential. Only draws whose octave straddles t
                        // (a ~2⁻ˡᶻ-probability sliver) pay for `exp_fast`.
                        let r = rng.next_u64();
                        let lz = r.leading_zeros() as f32;
                        let t = -bd * std::f32::consts::LOG2_E;
                        if t >= -lz {
                            true
                        } else if t <= -(lz + 1.0) {
                            false
                        } else {
                            (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < exp_fast(-(bd as f64))
                        }
                    }
                };
                if accept {
                    spins.flip(k);
                    csr.axpy_row_f32(&mut h_eff, k, 2.0 * spins.apply_sign_f32(k, 1.0));
                    if traced {
                        energy += delta as f64;
                    }
                }
            }};
        }
        // A proposal is a *certain reject* iff Δ > 0 and β·Δ exceeds the
        // cutoff, i.e. s·h < −cutoff/(2β): a strongly-satisfied spin. Certain
        // rejects consume no RNG and flip nothing, so whole runs of them can
        // be skipped with one multiply-compare per spin, 8 lanes at a time.
        // That only pays once a good fraction of a sweep is such spins, so
        // the scan arms when the *mean* spin clears the cutoff (cold,
        // frozen sweeps) — hot sweeps keep the plain loop, where the filter
        // would be pure overhead. The margin (+0.5) keeps the f32 filter
        // conservative: anything near the cutoff falls through to the exact
        // scalar test.
        let frozen = 2.0 * beta * h_scale > FAST_REJECT_CUTOFF + 0.5;
        if identity_order && frozen {
            let neg_thresh = (-(FAST_REJECT_CUTOFF + 0.5) / (2.0 * beta)) as f32;
            let mut k = 0usize;
            while k < n {
                if k + 8 <= n {
                    // Chunk starts drift after a live proposal, so the 8
                    // sign bits may straddle a word boundary.
                    let sh = k & 63;
                    let lo = spins.words()[k >> 6] >> sh;
                    let merged = if sh <= 56 {
                        lo
                    } else {
                        lo | (spins.words()[(k >> 6) + 1] << (64 - sh))
                    };
                    let bits = (merged & 0xFF) as u32;
                    let mut live = 0u32;
                    for j in 0..8 {
                        let s = ((bits >> j & 1) as i32 * 2 - 1) as f32;
                        let t = s * h_eff[k + j];
                        live |= ((t >= neg_thresh) as u32) << j;
                    }
                    if live == 0 {
                        k += 8; // eight certain rejects
                        continue;
                    }
                    k += live.trailing_zeros() as usize;
                }
                propose!(k);
                k += 1;
            }
        } else {
            // Color-ordered pass: `order()` is the flat concatenation of the
            // independent color classes — same sequence as nesting over
            // `classes()`, without the per-class loop overhead.
            for &k in order {
                propose!(k as usize);
            }
        }
        beta *= ratio;
        if sweep % FAST_FIELD_REFRESH_SWEEPS == 0 && sweep < params.sweeps {
            // f32 deltas drift; rebuild the field cache from scratch (but
            // not on the final sweep — the returned energy is recomputed
            // exactly from the spins, so a last-sweep rebuild is dead work).
            // The
            // running energy estimate only feeds the trace, so the exact
            // re-anchor is skipped on untraced reads (the returned energy is
            // always an exact final recompute either way).
            csr.fill_local_fields_f32(&spins, &mut h_eff);
            h_scale = mean_abs_h(&h_eff);
            if traced {
                energy = csr.energy(&spins.to_spins());
            }
        }
        if let Some(t) = trace.as_deref_mut() {
            best = best.min(energy);
            t.push(best);
        }
    }
    let final_spins = spins.to_spins();
    let final_energy = csr.energy(&final_spins);
    (final_spins, final_energy)
}

/// Kernel-dispatching traced read: runs the kernel selected by
/// `params.kernel` and returns `(spins, exact final energy, trace)`.
///
/// With [`SweepKernel::Exact`] this is precisely [`sa_read_csr_traced`]
/// (bit-identical state, tracked energy and RNG stream); with
/// [`SweepKernel::Fast`] it is [`sa_read_fast_traced`].
pub fn sa_read_traced(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> (Vec<i8>, f64, SweepTrace) {
    match params.kernel {
        SweepKernel::Exact => {
            let (state, trace) = sa_read_csr_traced(csr, params, start, rng);
            let energy = state.energy();
            (state.into_spins(), energy, trace)
        }
        SweepKernel::Fast => sa_read_fast_traced(csr, params, start, rng),
    }
}

/// Kernel-dispatching single read used by the sampling fan-outs: returns
/// `(spins, exact Ising energy)` from whichever kernel `params.kernel`
/// selects. The `Exact` arm consumes the RNG exactly as the historical
/// kernel did, keeping the sample paths bit-identical at the default.
#[inline]
fn run_read(csr: &CsrIsing, params: &SaParams, start: &[i8], rng: &mut Rng64) -> (Vec<i8>, f64) {
    match params.kernel {
        SweepKernel::Exact => {
            let state = sa_read_csr(csr, params, start, rng);
            let energy = state.energy();
            (state.into_spins(), energy)
        }
        SweepKernel::Fast => sa_read_fast(csr, params, start, rng),
    }
}

/// One SA read on an Ising model starting from `start` spins.
/// Returns the final spin configuration.
///
/// Convenience wrapper over [`sa_read_csr`]; when running many reads on one
/// problem, build the [`CsrIsing`] once and call the CSR kernel directly.
pub fn sa_read_ising(ising: &Ising, params: &SaParams, start: &[i8], rng: &mut Rng64) -> Vec<i8> {
    let csr = CsrIsing::from_ising(ising);
    sa_read_csr(&csr, params, start, rng).into_spins()
}

/// Samples a QUBO with SA: `num_reads` independent reads from uniform random
/// starts, aggregated into a [`SampleSet`] with QUBO energies.
///
/// The QUBO is converted to Ising (and flattened to CSR) **once**; per-read
/// energies come from the incrementally tracked Ising energy plus the
/// conversion offset, never a full `qubo.energy` evaluation. Reads run in
/// parallel per [`SaParams::threads`] with per-read RNG streams drawn from
/// `rng` up front, so the result is bit-identical for any thread count.
pub fn sample_qubo(qubo: &Qubo, params: &SaParams, rng: &mut Rng64) -> SampleSet {
    sample_qubo_with_start(qubo, params, None, rng)
}

/// [`sample_qubo`] with an optional **warm start**: when `warm_start` is
/// given, every read begins from that bit assignment instead of a uniform
/// random state (reads still diverge through their independent Metropolis
/// streams), and the seed itself joins the sample set as one extra
/// zero-cost candidate — the hot phase of the schedule can randomize the
/// seed away, so including it guarantees the best sample is never worse
/// than the state the caller already had (the same "refinement can only
/// help" selection the hybrid solver applies). `total_reads` is therefore
/// `num_reads + 1` under a warm start. With `None` this is exactly
/// `sample_qubo` — same RNG consumption, bit-identical output.
///
/// Warm starts are how streaming workloads exploit temporal channel
/// coherence: frame `t − 1`'s decision is a low-ΔE_IS initial state for
/// frame `t`, so warm reads reach cold-start quality in fewer sweeps.
///
/// # Panics
/// Panics on invalid parameters or a warm-start length mismatch.
pub fn sample_qubo_with_start(
    qubo: &Qubo,
    params: &SaParams,
    warm_start: Option<&[u8]>,
    rng: &mut Rng64,
) -> SampleSet {
    params.validate_or_panic();
    let (ising, offset) = qubo.to_ising();
    let csr = CsrIsing::from_ising(&ising);
    let n = qubo.num_vars();
    let warm_spins = warm_start.map(|bits| {
        assert_eq!(bits.len(), n, "sample_qubo_with_start: start length");
        crate::solution::bits_to_spins(bits)
    });

    // Per-read seeds drawn from the caller's stream: the fan-out is
    // deterministic and thread-count invariant.
    let read_seeds: Vec<u64> = (0..params.num_reads).map(|_| rng.next_u64()).collect();

    let reads = parallel_map_indexed(&read_seeds, params.threads, |_, &read_seed| {
        let mut read_rng = Rng64::new(read_seed);
        let start: Vec<i8> = match &warm_spins {
            Some(spins) => spins.clone(),
            None => (0..n)
                .map(|_| if read_rng.next_bool() { 1 } else { -1 })
                .collect(),
        };
        let (spins, ising_energy) = run_read(&csr, params, &start, &mut read_rng);
        let energy = ising_energy + offset;
        debug_assert!(
            (energy - qubo.energy(&spins_to_bits(&spins))).abs() < 1e-6 * (1.0 + energy.abs()),
            "tracked energy drifted from the exact QUBO energy"
        );
        (spins_to_bits(&spins), energy)
    });

    // The seed is a known state at zero cost: report it alongside the reads
    // so warm-started sampling is structurally never-worse-than-seed.
    let seed_sample = warm_start.map(|bits| (bits.to_vec(), qubo.energy(bits)));
    SampleSet::from_reads(seed_sample.into_iter().chain(reads))
}

/// Samples a **batch** of QUBOs in one call — the backend-side primitive the
/// compute-fabric scheduler coalesces same-shape detection problems into.
///
/// All `problems × num_reads` reads fan out through a **single** parallel
/// dispatch, so a pool with more workers than any one problem has reads
/// still saturates (cross-problem parallelism) — the batching win over a
/// `sample_qubo` loop, whose fan-outs are bounded by `num_reads` each.
///
/// Results are bit-identical to the sequential loop: per-read seeds are
/// drawn from the caller's RNG problem-major (problem 0's reads first),
/// exactly the positions `sample_qubo` would consume, and each read's
/// Metropolis stream depends only on its seed (regression-tested below).
///
/// # Panics
/// Panics on invalid parameters.
pub fn sample_qubo_batch(qubos: &[&Qubo], params: &SaParams, rng: &mut Rng64) -> Vec<SampleSet> {
    params.validate_or_panic();
    // Problem-major seed draw: the exact stream positions a sequential
    // `sample_qubo` loop would consume.
    let read_seeds: Vec<(usize, u64)> = (0..qubos.len())
        .flat_map(|k| std::iter::repeat_n(k, params.num_reads))
        .map(|k| (k, rng.next_u64()))
        .collect();
    run_batch_reads(qubos, params, read_seeds)
}

/// [`sample_qubo_batch`] with **one independent seed per problem**: problem
/// `k`'s reads derive from `seeds[k]` alone, so its sample set is
/// bit-identical to `sample_qubo(qubos[k], params, &mut Rng64::new(seeds[k]))`
/// regardless of which other problems share the call. This is the variant a
/// scheduler that re-buckets jobs into batches dynamically wants: results
/// can never depend on batch composition (regression-tested below).
///
/// # Panics
/// Panics on invalid parameters or a `qubos`/`seeds` length mismatch.
pub fn sample_qubo_batch_seeded(
    qubos: &[&Qubo],
    params: &SaParams,
    seeds: &[u64],
) -> Vec<SampleSet> {
    params.validate_or_panic();
    assert_eq!(
        qubos.len(),
        seeds.len(),
        "sample_qubo_batch_seeded: one seed per problem"
    );
    let read_seeds: Vec<(usize, u64)> = seeds
        .iter()
        .enumerate()
        .flat_map(|(k, &seed)| {
            let mut problem_rng = Rng64::new(seed);
            (0..params.num_reads)
                .map(|_| (k, problem_rng.next_u64()))
                .collect::<Vec<_>>()
        })
        .collect();
    run_batch_reads(qubos, params, read_seeds)
}

/// Shared fan-out core of the batch samplers: runs every `(problem, read
/// seed)` pair through one parallel dispatch and regroups by problem.
fn run_batch_reads(
    qubos: &[&Qubo],
    params: &SaParams,
    read_seeds: Vec<(usize, u64)>,
) -> Vec<SampleSet> {
    let prepared: Vec<(CsrIsing, f64, usize)> = qubos
        .iter()
        .map(|qubo| {
            let (ising, offset) = qubo.to_ising();
            (CsrIsing::from_ising(&ising), offset, qubo.num_vars())
        })
        .collect();

    let reads = parallel_map_indexed(&read_seeds, params.threads, |_, &(k, read_seed)| {
        let (csr, offset, n) = &prepared[k];
        let mut read_rng = Rng64::new(read_seed);
        let start: Vec<i8> = (0..*n)
            .map(|_| if read_rng.next_bool() { 1 } else { -1 })
            .collect();
        let (spins, ising_energy) = run_read(csr, params, &start, &mut read_rng);
        (spins_to_bits(&spins), ising_energy + offset)
    });

    let mut per_problem: Vec<Vec<(Vec<u8>, f64)>> = vec![Vec::new(); qubos.len()];
    for (&(k, _), read) in read_seeds.iter().zip(reads) {
        per_problem[k].push(read);
    }
    per_problem.into_iter().map(SampleSet::from_reads).collect()
}

/// Best-effort ground-state search: SA with an aggressive schedule and many
/// reads, refined by steepest descent. Returns `(bits, energy)`.
///
/// Used to certify ground energies where enumeration is infeasible; for the
/// paper's noiseless MIMO instances the analytic ground state is available
/// and this function is a cross-check.
pub fn intensive_search(qubo: &Qubo, num_reads: usize, rng: &mut Rng64) -> (Vec<u8>, f64) {
    let params = SaParams {
        beta_initial: 0.05,
        beta_final: 20.0,
        sweeps: 256,
        num_reads,
        threads: 1,
        kernel: SweepKernel::Exact,
    };
    let set = sample_qubo(qubo, &params, rng);
    let best = set.best().expect("intensive_search: no samples");
    let (bits, energy, _) = crate::local::steepest_descent(qubo, &best.bits);
    (bits, energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::{planted_qubo, random_qubo};

    /// A named field mutation for the validate() rejection-path tests.
    type Mutation<T> = (&'static str, Box<dyn Fn(&mut T)>);

    #[test]
    fn validate_rejects_each_bad_field_with_a_message() {
        let cases: [Mutation<SaParams>; 4] = [
            (
                "beta_initial must be > 0",
                Box::new(|p| p.beta_initial = 0.0),
            ),
            (
                "beta_final must be ≥ beta_initial",
                Box::new(|p| p.beta_final = 0.01),
            ),
            ("sweeps must be > 0", Box::new(|p| p.sweeps = 0)),
            ("num_reads must be > 0", Box::new(|p| p.num_reads = 0)),
        ];
        for (needle, mutate) in cases {
            let mut params = SaParams::default();
            mutate(&mut params);
            let err = params.validate().expect_err(needle);
            assert!(err.contains(needle), "{err} missing {needle}");
        }
        assert_eq!(SaParams::default().validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "sweeps must be > 0")]
    fn validate_or_panic_shim_keeps_the_original_behaviour() {
        SaParams {
            sweeps: 0,
            ..SaParams::default()
        }
        .validate_or_panic();
    }

    #[test]
    fn sa_finds_optimum_on_small_problems() {
        let mut rng = Rng64::new(31);
        for _ in 0..5 {
            let q = random_qubo(12, &mut rng);
            let (_, e_best) = exhaustive_minimum(&q);
            let set = sample_qubo(&q, &SaParams::default(), &mut rng);
            assert!(
                (set.best_energy() - e_best).abs() < 1e-9,
                "SA missed the optimum: {} vs {e_best}",
                set.best_energy()
            );
        }
    }

    #[test]
    fn sa_finds_planted_optimum_at_larger_size() {
        let mut rng = Rng64::new(33);
        let (q, planted) = planted_qubo(40, 120, &mut rng);
        let e_planted = q.energy(&planted);
        let (_, e_found) = intensive_search(&q, 16, &mut rng);
        assert!(
            e_found <= e_planted + 1e-9,
            "SA should reach the planted optimum: found {e_found}, planted {e_planted}"
        );
    }

    #[test]
    fn sample_set_counts_match_reads() {
        let mut rng = Rng64::new(35);
        let q = random_qubo(8, &mut rng);
        let params = SaParams {
            num_reads: 17,
            ..SaParams::default()
        };
        let set = sample_qubo(&q, &params, &mut rng);
        assert_eq!(set.total_reads(), 17);
    }

    #[test]
    fn deterministic_given_seed() {
        let q = random_qubo(10, &mut Rng64::new(1));
        let a = sample_qubo(&q, &SaParams::default(), &mut Rng64::new(2));
        let b = sample_qubo(&q, &SaParams::default(), &mut Rng64::new(2));
        assert_eq!(a.best().unwrap().bits, b.best().unwrap().bits);
        assert_eq!(a.total_reads(), b.total_reads());
    }

    #[test]
    fn parallel_reads_are_bit_identical_to_serial() {
        // The determinism regression: the same seed must yield the same
        // SampleSet (states, energies, occurrence counts) for any thread
        // count, including thread counts that don't divide num_reads.
        let q = random_qubo(16, &mut Rng64::new(71));
        let collect = |threads: usize| {
            let params = SaParams {
                num_reads: 13,
                sweeps: 48,
                threads,
                ..SaParams::default()
            };
            sample_qubo(&q, &params, &mut Rng64::new(9))
        };
        let serial = collect(1);
        for threads in [2, 3, 8] {
            let parallel = collect(threads);
            assert_eq!(serial.total_reads(), parallel.total_reads());
            assert_eq!(serial.num_distinct(), parallel.num_distinct());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.bits, b.bits, "threads={threads}");
                assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "threads={threads}");
                assert_eq!(a.occurrences, b.occurrences, "threads={threads}");
            }
        }
    }

    #[test]
    fn tracked_energies_match_full_recompute() {
        let mut rng = Rng64::new(73);
        for n in [6usize, 12, 20] {
            let q = random_qubo(n, &mut rng);
            let set = sample_qubo(&q, &SaParams::default(), &mut rng);
            for s in set.iter() {
                assert!(
                    (q.energy(&s.bits) - s.energy).abs() < 1e-9 * (1.0 + s.energy.abs()),
                    "reported energy drifted from exact at n={n}"
                );
            }
        }
    }

    #[test]
    fn batched_sampling_matches_the_sequential_loop() {
        let mut rng = Rng64::new(97);
        let problems: Vec<Qubo> = (0..3).map(|_| random_qubo(10, &mut rng)).collect();
        let refs: Vec<&Qubo> = problems.iter().collect();
        let params = SaParams {
            sweeps: 24,
            num_reads: 6,
            threads: 1,
            ..SaParams::default()
        };

        let batch = sample_qubo_batch(&refs, &params, &mut Rng64::new(5));
        let mut seq_rng = Rng64::new(5);
        let sequential: Vec<SampleSet> = problems
            .iter()
            .map(|q| sample_qubo(q, &params, &mut seq_rng))
            .collect();

        assert_eq!(batch.len(), sequential.len());
        for (a, b) in batch.iter().zip(&sequential) {
            let av: Vec<_> = a.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
            let bv: Vec<_> = b.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
            assert_eq!(av, bv, "batched and sequential samples diverged");
        }
    }

    #[test]
    fn batched_sampling_is_thread_count_invariant() {
        let mut rng = Rng64::new(99);
        let problems: Vec<Qubo> = (0..4).map(|_| random_qubo(8, &mut rng)).collect();
        let refs: Vec<&Qubo> = problems.iter().collect();
        let mut params = SaParams {
            sweeps: 16,
            num_reads: 3,
            threads: 1,
            ..SaParams::default()
        };
        let serial = sample_qubo_batch(&refs, &params, &mut Rng64::new(8));
        for threads in [2, 0] {
            params.threads = threads;
            let parallel = sample_qubo_batch(&refs, &params, &mut Rng64::new(8));
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.best_energy(), b.best_energy(), "threads={threads}");
                let av: Vec<_> = a.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
                let bv: Vec<_> = b.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
                assert_eq!(av, bv, "threads={threads}");
            }
        }
    }

    #[test]
    fn batched_sampling_accepts_an_empty_batch() {
        let out = sample_qubo_batch(&[], &SaParams::default(), &mut Rng64::new(1));
        assert!(out.is_empty());
        assert!(sample_qubo_batch_seeded(&[], &SaParams::default(), &[]).is_empty());
    }

    #[test]
    fn seeded_batch_is_independent_of_batch_composition() {
        let mut rng = Rng64::new(101);
        let problems: Vec<Qubo> = (0..3).map(|_| random_qubo(9, &mut rng)).collect();
        let refs: Vec<&Qubo> = problems.iter().collect();
        let seeds = [11u64, 22, 33];
        let params = SaParams {
            sweeps: 20,
            num_reads: 4,
            threads: 1,
            ..SaParams::default()
        };

        let samples = |set: &SampleSet| -> Vec<(Vec<u8>, u64)> {
            set.iter()
                .map(|s| (s.bits.clone(), s.occurrences))
                .collect()
        };

        let together = sample_qubo_batch_seeded(&refs, &params, &seeds);
        // Each problem alone, and in reversed company: identical results.
        for (k, (q, &seed)) in problems.iter().zip(&seeds).enumerate() {
            let alone = sample_qubo_batch_seeded(&[q], &params, &[seed]);
            assert_eq!(samples(&together[k]), samples(&alone[0]), "problem {k}");
            let direct = sample_qubo(q, &params, &mut Rng64::new(seed));
            assert_eq!(samples(&together[k]), samples(&direct), "problem {k}");
        }
        let rev_refs: Vec<&Qubo> = problems.iter().rev().collect();
        let rev_seeds: Vec<u64> = seeds.iter().rev().copied().collect();
        let reversed = sample_qubo_batch_seeded(&rev_refs, &params, &rev_seeds);
        for k in 0..3 {
            assert_eq!(samples(&together[k]), samples(&reversed[2 - k]));
        }
    }

    #[test]
    #[should_panic(expected = "one seed per problem")]
    fn seeded_batch_rejects_seed_length_mismatch() {
        let mut rng = Rng64::new(103);
        let q = random_qubo(4, &mut rng);
        sample_qubo_batch_seeded(&[&q], &SaParams::default(), &[1, 2]);
    }

    #[test]
    fn traced_read_matches_untraced_bit_for_bit() {
        let q = random_qubo(14, &mut Rng64::new(81));
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let params = SaParams::default();
        let start = vec![1i8; 14];
        let plain = sa_read_csr(&csr, &params, &start, &mut Rng64::new(5));
        let (traced, trace) = sa_read_csr_traced(&csr, &params, &start, &mut Rng64::new(5));
        assert_eq!(plain.spins(), traced.spins());
        assert_eq!(plain.energy().to_bits(), traced.energy().to_bits());
        assert_eq!(trace.best_by_sweep.len(), params.sweeps + 1);
        // Running best is non-increasing and ends at/below the final energy.
        for w in trace.best_by_sweep.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(trace.best_energy() <= traced.energy() + 1e-12);
    }

    #[test]
    fn trace_sweep_counters_are_consistent() {
        let q = random_qubo(12, &mut Rng64::new(83));
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let start = vec![-1i8; 12];
        let (_, trace) = sa_read_csr_traced(&csr, &SaParams::default(), &start, &mut Rng64::new(7));
        let k = trace.sweeps_to_best();
        assert!(k <= SaParams::default().sweeps);
        assert_eq!(trace.sweeps_to_reach(trace.best_energy()), Some(k));
        // The start state always "reaches" its own energy in zero sweeps.
        assert_eq!(trace.sweeps_to_reach(trace.best_by_sweep[0]), Some(0));
        // An unreachable target reports None.
        assert_eq!(trace.sweeps_to_reach(trace.best_energy() - 1e6), None);
    }

    #[test]
    fn warm_start_none_is_exactly_sample_qubo() {
        let q = random_qubo(10, &mut Rng64::new(85));
        let params = SaParams {
            num_reads: 9,
            ..SaParams::default()
        };
        let a = sample_qubo(&q, &params, &mut Rng64::new(3));
        let b = sample_qubo_with_start(&q, &params, None, &mut Rng64::new(3));
        assert_eq!(a.total_reads(), b.total_reads());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.bits, y.bits);
            assert_eq!(x.energy.to_bits(), y.energy.to_bits());
        }
    }

    #[test]
    fn warm_started_reads_never_lose_to_their_seed() {
        // Structural guarantee: the seed joins the sample set as a
        // zero-cost candidate, so even a pathologically hot schedule (one
        // sweep at near-zero β, which randomizes the seed away) cannot
        // return anything worse than the seed itself.
        let mut rng = Rng64::new(87);
        let (q, planted) = planted_qubo(24, 60, &mut rng);
        let params = SaParams {
            beta_initial: 1e-3,
            beta_final: 1e-3,
            sweeps: 1,
            num_reads: 4,
            ..SaParams::default()
        };
        let set = sample_qubo_with_start(&q, &params, Some(&planted), &mut rng);
        assert_eq!(set.total_reads(), 5, "seed counts as one extra sample");
        assert!(
            set.best_energy() <= q.energy(&planted) + 1e-9,
            "warm-started SA regressed below its seed quality"
        );
    }

    #[test]
    #[should_panic(expected = "start length")]
    fn warm_start_length_mismatch_panics() {
        let q = random_qubo(6, &mut Rng64::new(89));
        sample_qubo_with_start(&q, &SaParams::default(), Some(&[0, 1]), &mut Rng64::new(1));
    }

    #[test]
    #[should_panic(expected = "beta_final")]
    fn invalid_params_panic() {
        let params = SaParams {
            beta_initial: 5.0,
            beta_final: 1.0,
            ..SaParams::default()
        };
        params.validate_or_panic();
    }

    #[test]
    fn fast_kernel_finds_optimum_on_small_problems() {
        let mut rng = Rng64::new(41);
        let params = SaParams {
            kernel: SweepKernel::Fast,
            ..SaParams::default()
        };
        for _ in 0..5 {
            let q = random_qubo(12, &mut rng);
            let (_, e_best) = exhaustive_minimum(&q);
            let set = sample_qubo(&q, &params, &mut rng);
            assert!(
                (set.best_energy() - e_best).abs() < 1e-9,
                "Fast kernel missed the optimum: {} vs {e_best}",
                set.best_energy()
            );
        }
    }

    #[test]
    fn fast_kernel_energies_are_exact_recomputes() {
        let mut rng = Rng64::new(43);
        let q = random_qubo(20, &mut rng);
        let params = SaParams {
            kernel: SweepKernel::Fast,
            num_reads: 8,
            ..SaParams::default()
        };
        let set = sample_qubo(&q, &params, &mut rng);
        for s in set.iter() {
            assert!(
                (q.energy(&s.bits) - s.energy).abs() < 1e-9 * (1.0 + s.energy.abs()),
                "Fast-kernel reported energy must be an exact recompute"
            );
        }
    }

    #[test]
    fn fast_kernel_is_deterministic_and_thread_invariant() {
        let q = random_qubo(16, &mut Rng64::new(45));
        let collect = |threads: usize| {
            let params = SaParams {
                kernel: SweepKernel::Fast,
                num_reads: 11,
                sweeps: 40,
                threads,
                ..SaParams::default()
            };
            sample_qubo(&q, &params, &mut Rng64::new(7))
        };
        let serial = collect(1);
        for threads in [2, 0] {
            let parallel = collect(threads);
            assert_eq!(serial.total_reads(), parallel.total_reads());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.bits, b.bits, "threads={threads}");
                assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn fast_kernel_is_statistically_equivalent_to_exact() {
        // Same schedule, same read count: the two kernels must land in the
        // same energy range. This is the distributional contract — means
        // within a few percent of the energy scale, not identical bits.
        let q = random_qubo(32, &mut Rng64::new(47));
        let run = |kernel: SweepKernel| {
            let params = SaParams {
                kernel,
                num_reads: 48,
                sweeps: 192,
                ..SaParams::default()
            };
            let set = sample_qubo(&q, &params, &mut Rng64::new(3));
            let mean: f64 = set
                .iter()
                .map(|s| s.energy * s.occurrences as f64)
                .sum::<f64>()
                / set.total_reads() as f64;
            (set.best_energy(), mean)
        };
        let (exact_best, exact_mean) = run(SweepKernel::Exact);
        let (fast_best, fast_mean) = run(SweepKernel::Fast);
        let scale = 1.0 + exact_best.abs();
        assert!(
            (exact_best - fast_best).abs() < 0.05 * scale,
            "best energies diverged: exact {exact_best} vs fast {fast_best}"
        );
        assert!(
            (exact_mean - fast_mean).abs() < 0.05 * scale,
            "mean energies diverged: exact {exact_mean} vs fast {fast_mean}"
        );
    }

    #[test]
    fn fast_traced_read_has_exact_anchors() {
        let q = random_qubo(18, &mut Rng64::new(49));
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let params = SaParams {
            kernel: SweepKernel::Fast,
            sweeps: 150, // crosses two refresh points
            ..SaParams::default()
        };
        let start = vec![1i8; 18];
        let (spins, energy, trace) = sa_read_traced(&csr, &params, &start, &mut Rng64::new(5));
        assert_eq!(trace.best_by_sweep.len(), params.sweeps + 1);
        for w in trace.best_by_sweep.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "running best must be non-increasing");
        }
        assert_eq!(
            energy.to_bits(),
            csr.energy(&spins).to_bits(),
            "final Fast energy must be an exact recompute"
        );
    }

    #[test]
    fn sa_read_traced_exact_matches_untraced_kernel() {
        let q = random_qubo(14, &mut Rng64::new(51));
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let params = SaParams::default();
        let start = vec![-1i8; 14];
        let state = sa_read_csr(&csr, &params, &start, &mut Rng64::new(5));
        let (spins, energy, _) = sa_read_traced(&csr, &params, &start, &mut Rng64::new(5));
        assert_eq!(state.spins(), &spins[..]);
        assert_eq!(state.energy().to_bits(), energy.to_bits());
    }

    #[test]
    fn fast_warm_start_keeps_the_seed_guarantee() {
        let mut rng = Rng64::new(53);
        let (q, planted) = planted_qubo(24, 60, &mut rng);
        let params = SaParams {
            kernel: SweepKernel::Fast,
            beta_initial: 1e-3,
            beta_final: 1e-3,
            sweeps: 1,
            num_reads: 4,
            ..SaParams::default()
        };
        let set = sample_qubo_with_start(&q, &params, Some(&planted), &mut rng);
        assert_eq!(set.total_reads(), 5);
        assert!(set.best_energy() <= q.energy(&planted) + 1e-9);
    }

    #[test]
    fn kernel_names_round_trip() {
        for kernel in [SweepKernel::Exact, SweepKernel::Fast] {
            assert_eq!(SweepKernel::parse(kernel.name()), Ok(kernel));
        }
        assert!(SweepKernel::parse("turbo").is_err());
        assert_eq!(SweepKernel::default(), SweepKernel::Exact);
    }

    #[test]
    fn single_sweep_is_accepted() {
        let mut rng = Rng64::new(37);
        let q = random_qubo(6, &mut rng);
        let params = SaParams {
            sweeps: 1,
            num_reads: 4,
            ..SaParams::default()
        };
        let set = sample_qubo(&q, &params, &mut rng);
        assert_eq!(set.total_reads(), 4);
    }
}
