//! Classical simulated annealing (SA) sampler.
//!
//! SA is the classical counterpart of the quantum annealers in `hqw-anneal`:
//! single-spin Metropolis dynamics on the Ising form with a geometric
//! inverse-temperature ramp. It serves as (a) the classical reference point
//! for the hybrid comparisons, and (b) the workhorse for certifying ground
//! energies on instances too large to enumerate.
//!
//! The sweep kernel runs on the flat [`CsrIsing`] representation with
//! incrementally-maintained local fields ([`LocalFieldState`]): a proposal
//! costs O(1) and only *accepted* flips pay an O(degree) cache update, so a
//! sweep is `O(n + accepted·deg)` instead of `O(n·deg)`. Reads are
//! independent and fan out across threads with per-read seeds derived from
//! the caller's RNG, so results are bit-identical for any thread count.

use crate::csr::{CsrIsing, LocalFieldState};
use crate::ising::Ising;
use crate::model::Qubo;
use crate::solution::{spins_to_bits, SampleSet};
use hqw_math::parallel::parallel_map_indexed;
use hqw_math::Rng64;

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Initial inverse temperature `β₀` (hot).
    pub beta_initial: f64,
    /// Final inverse temperature `β₁` (cold).
    pub beta_final: f64,
    /// Number of full sweeps over all spins.
    pub sweeps: usize,
    /// Number of independent reads.
    pub num_reads: usize,
    /// Worker threads for parallel reads (1 = serial, 0 = all available
    /// cores). Results are bit-identical for any value.
    pub threads: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            beta_initial: 0.1,
            beta_final: 10.0,
            sweeps: 128,
            num_reads: 32,
            threads: 1,
        }
    }
}

impl SaParams {
    /// Validates parameter ranges.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint: non-positive or
    /// non-finite betas, `beta_final < beta_initial`, zero sweeps, or zero
    /// reads.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.beta_initial > 0.0 && self.beta_initial.is_finite()) {
            return Err("SaParams: beta_initial must be > 0".to_string());
        }
        if !(self.beta_final >= self.beta_initial && self.beta_final.is_finite()) {
            return Err("SaParams: beta_final must be ≥ beta_initial".to_string());
        }
        if self.sweeps == 0 {
            return Err("SaParams: sweeps must be > 0".to_string());
        }
        if self.num_reads == 0 {
            return Err("SaParams: num_reads must be > 0".to_string());
        }
        Ok(())
    }

    /// Shim for callers that still want the original panicking behaviour.
    /// Deprecated in spirit: new code should propagate [`SaParams::validate`]
    /// errors instead (the kernel entry points keep this for their
    /// assert-style contracts).
    ///
    /// # Panics
    /// Panics with the [`SaParams::validate`] message on any invalid field.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Running-best energy trajectory of one SA read, sampled at sweep
/// boundaries.
///
/// Index `k` of the trajectory is the lowest Ising energy seen after `k`
/// full sweeps; index 0 is the start state's energy. This is the
/// *sweeps-to-solution* instrument for warm-start studies: the streaming
/// engine compares how many sweeps a warm-started read needs to match a
/// cold-started read's final quality.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTrace {
    /// `best[k]` = lowest tracked energy after `k` sweeps (`best[0]` = the
    /// start state's energy). Non-increasing by construction.
    pub best_by_sweep: Vec<f64>,
}

impl SweepTrace {
    /// Lowest energy seen over the whole read.
    ///
    /// # Panics
    /// Panics on an empty trajectory (never produced by the SA kernels).
    pub fn best_energy(&self) -> f64 {
        *self
            .best_by_sweep
            .last()
            .expect("SweepTrace: empty trajectory")
    }

    /// Number of sweeps needed to first reach `target` energy (within a
    /// relative tolerance), or `None` when the read never got there.
    /// 0 means the start state already met the target.
    pub fn sweeps_to_reach(&self, target: f64) -> Option<usize> {
        let tol = 1e-9 * (1.0 + target.abs());
        self.best_by_sweep.iter().position(|&e| e <= target + tol)
    }

    /// Sweeps needed to first attain this read's own final best energy.
    pub fn sweeps_to_best(&self) -> usize {
        self.sweeps_to_reach(self.best_energy())
            .expect("SweepTrace: best energy unreachable")
    }
}

/// One SA read on a CSR Ising model starting from `start` spins.
///
/// Returns the final [`LocalFieldState`], whose tracked
/// [`LocalFieldState::energy`] is the Ising energy of the returned spins —
/// callers report energies without an O(n²) recompute.
///
/// # Panics
/// Panics on invalid parameters or a start-length mismatch.
pub fn sa_read_csr(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> LocalFieldState {
    sa_read_impl(csr, params, start, rng, None)
}

/// One SA read that also records its running-best energy per sweep.
///
/// The Metropolis dynamics (and RNG consumption) are identical to
/// [`sa_read_csr`]; the trace is a pure observation, so the returned state
/// is bit-identical to the untraced kernel on the same inputs.
///
/// # Panics
/// Panics on invalid parameters or a start-length mismatch.
pub fn sa_read_csr_traced(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
) -> (LocalFieldState, SweepTrace) {
    let mut best_by_sweep = Vec::with_capacity(params.sweeps + 1);
    let state = sa_read_impl(csr, params, start, rng, Some(&mut best_by_sweep));
    (state, SweepTrace { best_by_sweep })
}

fn sa_read_impl(
    csr: &CsrIsing,
    params: &SaParams,
    start: &[i8],
    rng: &mut Rng64,
    mut trace: Option<&mut Vec<f64>>,
) -> LocalFieldState {
    params.validate_or_panic();
    let n = csr.num_vars();
    assert_eq!(start.len(), n, "sa_read_csr: start length mismatch");
    let mut state = LocalFieldState::new(csr, start.to_vec());
    let mut best = state.energy();
    if let Some(t) = trace.as_deref_mut() {
        t.push(best);
    }
    if n == 0 {
        return state;
    }
    // Geometric β ladder: β_t = β₀ · r^t with r chosen to land on β₁.
    let ratio = if params.sweeps > 1 {
        (params.beta_final / params.beta_initial).powf(1.0 / (params.sweeps - 1) as f64)
    } else {
        1.0
    };
    let mut beta = params.beta_initial;
    for _ in 0..params.sweeps {
        for k in 0..n {
            let delta = state.flip_delta(k);
            if delta <= 0.0 || rng.next_f64() < (-beta * delta).exp() {
                state.flip(csr, k);
            }
        }
        beta *= ratio;
        if let Some(t) = trace.as_deref_mut() {
            best = best.min(state.energy());
            t.push(best);
        }
    }
    state
}

/// One SA read on an Ising model starting from `start` spins.
/// Returns the final spin configuration.
///
/// Convenience wrapper over [`sa_read_csr`]; when running many reads on one
/// problem, build the [`CsrIsing`] once and call the CSR kernel directly.
pub fn sa_read_ising(ising: &Ising, params: &SaParams, start: &[i8], rng: &mut Rng64) -> Vec<i8> {
    let csr = CsrIsing::from_ising(ising);
    sa_read_csr(&csr, params, start, rng).into_spins()
}

/// Samples a QUBO with SA: `num_reads` independent reads from uniform random
/// starts, aggregated into a [`SampleSet`] with QUBO energies.
///
/// The QUBO is converted to Ising (and flattened to CSR) **once**; per-read
/// energies come from the incrementally tracked Ising energy plus the
/// conversion offset, never a full `qubo.energy` evaluation. Reads run in
/// parallel per [`SaParams::threads`] with per-read RNG streams drawn from
/// `rng` up front, so the result is bit-identical for any thread count.
pub fn sample_qubo(qubo: &Qubo, params: &SaParams, rng: &mut Rng64) -> SampleSet {
    sample_qubo_with_start(qubo, params, None, rng)
}

/// [`sample_qubo`] with an optional **warm start**: when `warm_start` is
/// given, every read begins from that bit assignment instead of a uniform
/// random state (reads still diverge through their independent Metropolis
/// streams), and the seed itself joins the sample set as one extra
/// zero-cost candidate — the hot phase of the schedule can randomize the
/// seed away, so including it guarantees the best sample is never worse
/// than the state the caller already had (the same "refinement can only
/// help" selection the hybrid solver applies). `total_reads` is therefore
/// `num_reads + 1` under a warm start. With `None` this is exactly
/// `sample_qubo` — same RNG consumption, bit-identical output.
///
/// Warm starts are how streaming workloads exploit temporal channel
/// coherence: frame `t − 1`'s decision is a low-ΔE_IS initial state for
/// frame `t`, so warm reads reach cold-start quality in fewer sweeps.
///
/// # Panics
/// Panics on invalid parameters or a warm-start length mismatch.
pub fn sample_qubo_with_start(
    qubo: &Qubo,
    params: &SaParams,
    warm_start: Option<&[u8]>,
    rng: &mut Rng64,
) -> SampleSet {
    params.validate_or_panic();
    let (ising, offset) = qubo.to_ising();
    let csr = CsrIsing::from_ising(&ising);
    let n = qubo.num_vars();
    let warm_spins = warm_start.map(|bits| {
        assert_eq!(bits.len(), n, "sample_qubo_with_start: start length");
        crate::solution::bits_to_spins(bits)
    });

    // Per-read seeds drawn from the caller's stream: the fan-out is
    // deterministic and thread-count invariant.
    let read_seeds: Vec<u64> = (0..params.num_reads).map(|_| rng.next_u64()).collect();

    let reads = parallel_map_indexed(&read_seeds, params.threads, |_, &read_seed| {
        let mut read_rng = Rng64::new(read_seed);
        let start: Vec<i8> = match &warm_spins {
            Some(spins) => spins.clone(),
            None => (0..n)
                .map(|_| if read_rng.next_bool() { 1 } else { -1 })
                .collect(),
        };
        let state = sa_read_csr(&csr, params, &start, &mut read_rng);
        let energy = state.energy() + offset;
        debug_assert!(
            (energy - qubo.energy(&spins_to_bits(state.spins()))).abs()
                < 1e-6 * (1.0 + energy.abs()),
            "tracked energy drifted from the exact QUBO energy"
        );
        (spins_to_bits(state.spins()), energy)
    });

    // The seed is a known state at zero cost: report it alongside the reads
    // so warm-started sampling is structurally never-worse-than-seed.
    let seed_sample = warm_start.map(|bits| (bits.to_vec(), qubo.energy(bits)));
    SampleSet::from_reads(seed_sample.into_iter().chain(reads))
}

/// Samples a **batch** of QUBOs in one call — the backend-side primitive the
/// compute-fabric scheduler coalesces same-shape detection problems into.
///
/// All `problems × num_reads` reads fan out through a **single** parallel
/// dispatch, so a pool with more workers than any one problem has reads
/// still saturates (cross-problem parallelism) — the batching win over a
/// `sample_qubo` loop, whose fan-outs are bounded by `num_reads` each.
///
/// Results are bit-identical to the sequential loop: per-read seeds are
/// drawn from the caller's RNG problem-major (problem 0's reads first),
/// exactly the positions `sample_qubo` would consume, and each read's
/// Metropolis stream depends only on its seed (regression-tested below).
///
/// # Panics
/// Panics on invalid parameters.
pub fn sample_qubo_batch(qubos: &[&Qubo], params: &SaParams, rng: &mut Rng64) -> Vec<SampleSet> {
    params.validate_or_panic();
    // Problem-major seed draw: the exact stream positions a sequential
    // `sample_qubo` loop would consume.
    let read_seeds: Vec<(usize, u64)> = (0..qubos.len())
        .flat_map(|k| std::iter::repeat_n(k, params.num_reads))
        .map(|k| (k, rng.next_u64()))
        .collect();
    run_batch_reads(qubos, params, read_seeds)
}

/// [`sample_qubo_batch`] with **one independent seed per problem**: problem
/// `k`'s reads derive from `seeds[k]` alone, so its sample set is
/// bit-identical to `sample_qubo(qubos[k], params, &mut Rng64::new(seeds[k]))`
/// regardless of which other problems share the call. This is the variant a
/// scheduler that re-buckets jobs into batches dynamically wants: results
/// can never depend on batch composition (regression-tested below).
///
/// # Panics
/// Panics on invalid parameters or a `qubos`/`seeds` length mismatch.
pub fn sample_qubo_batch_seeded(
    qubos: &[&Qubo],
    params: &SaParams,
    seeds: &[u64],
) -> Vec<SampleSet> {
    params.validate_or_panic();
    assert_eq!(
        qubos.len(),
        seeds.len(),
        "sample_qubo_batch_seeded: one seed per problem"
    );
    let read_seeds: Vec<(usize, u64)> = seeds
        .iter()
        .enumerate()
        .flat_map(|(k, &seed)| {
            let mut problem_rng = Rng64::new(seed);
            (0..params.num_reads)
                .map(|_| (k, problem_rng.next_u64()))
                .collect::<Vec<_>>()
        })
        .collect();
    run_batch_reads(qubos, params, read_seeds)
}

/// Shared fan-out core of the batch samplers: runs every `(problem, read
/// seed)` pair through one parallel dispatch and regroups by problem.
fn run_batch_reads(
    qubos: &[&Qubo],
    params: &SaParams,
    read_seeds: Vec<(usize, u64)>,
) -> Vec<SampleSet> {
    let prepared: Vec<(CsrIsing, f64, usize)> = qubos
        .iter()
        .map(|qubo| {
            let (ising, offset) = qubo.to_ising();
            (CsrIsing::from_ising(&ising), offset, qubo.num_vars())
        })
        .collect();

    let reads = parallel_map_indexed(&read_seeds, params.threads, |_, &(k, read_seed)| {
        let (csr, offset, n) = &prepared[k];
        let mut read_rng = Rng64::new(read_seed);
        let start: Vec<i8> = (0..*n)
            .map(|_| if read_rng.next_bool() { 1 } else { -1 })
            .collect();
        let state = sa_read_csr(csr, params, &start, &mut read_rng);
        (spins_to_bits(state.spins()), state.energy() + offset)
    });

    let mut per_problem: Vec<Vec<(Vec<u8>, f64)>> = vec![Vec::new(); qubos.len()];
    for (&(k, _), read) in read_seeds.iter().zip(reads) {
        per_problem[k].push(read);
    }
    per_problem.into_iter().map(SampleSet::from_reads).collect()
}

/// Best-effort ground-state search: SA with an aggressive schedule and many
/// reads, refined by steepest descent. Returns `(bits, energy)`.
///
/// Used to certify ground energies where enumeration is infeasible; for the
/// paper's noiseless MIMO instances the analytic ground state is available
/// and this function is a cross-check.
pub fn intensive_search(qubo: &Qubo, num_reads: usize, rng: &mut Rng64) -> (Vec<u8>, f64) {
    let params = SaParams {
        beta_initial: 0.05,
        beta_final: 20.0,
        sweeps: 256,
        num_reads,
        threads: 1,
    };
    let set = sample_qubo(qubo, &params, rng);
    let best = set.best().expect("intensive_search: no samples");
    let (bits, energy, _) = crate::local::steepest_descent(qubo, &best.bits);
    (bits, energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::{planted_qubo, random_qubo};

    /// A named field mutation for the validate() rejection-path tests.
    type Mutation<T> = (&'static str, Box<dyn Fn(&mut T)>);

    #[test]
    fn validate_rejects_each_bad_field_with_a_message() {
        let cases: [Mutation<SaParams>; 4] = [
            (
                "beta_initial must be > 0",
                Box::new(|p| p.beta_initial = 0.0),
            ),
            (
                "beta_final must be ≥ beta_initial",
                Box::new(|p| p.beta_final = 0.01),
            ),
            ("sweeps must be > 0", Box::new(|p| p.sweeps = 0)),
            ("num_reads must be > 0", Box::new(|p| p.num_reads = 0)),
        ];
        for (needle, mutate) in cases {
            let mut params = SaParams::default();
            mutate(&mut params);
            let err = params.validate().expect_err(needle);
            assert!(err.contains(needle), "{err} missing {needle}");
        }
        assert_eq!(SaParams::default().validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "sweeps must be > 0")]
    fn validate_or_panic_shim_keeps_the_original_behaviour() {
        SaParams {
            sweeps: 0,
            ..SaParams::default()
        }
        .validate_or_panic();
    }

    #[test]
    fn sa_finds_optimum_on_small_problems() {
        let mut rng = Rng64::new(31);
        for _ in 0..5 {
            let q = random_qubo(12, &mut rng);
            let (_, e_best) = exhaustive_minimum(&q);
            let set = sample_qubo(&q, &SaParams::default(), &mut rng);
            assert!(
                (set.best_energy() - e_best).abs() < 1e-9,
                "SA missed the optimum: {} vs {e_best}",
                set.best_energy()
            );
        }
    }

    #[test]
    fn sa_finds_planted_optimum_at_larger_size() {
        let mut rng = Rng64::new(33);
        let (q, planted) = planted_qubo(40, 120, &mut rng);
        let e_planted = q.energy(&planted);
        let (_, e_found) = intensive_search(&q, 16, &mut rng);
        assert!(
            e_found <= e_planted + 1e-9,
            "SA should reach the planted optimum: found {e_found}, planted {e_planted}"
        );
    }

    #[test]
    fn sample_set_counts_match_reads() {
        let mut rng = Rng64::new(35);
        let q = random_qubo(8, &mut rng);
        let params = SaParams {
            num_reads: 17,
            ..SaParams::default()
        };
        let set = sample_qubo(&q, &params, &mut rng);
        assert_eq!(set.total_reads(), 17);
    }

    #[test]
    fn deterministic_given_seed() {
        let q = random_qubo(10, &mut Rng64::new(1));
        let a = sample_qubo(&q, &SaParams::default(), &mut Rng64::new(2));
        let b = sample_qubo(&q, &SaParams::default(), &mut Rng64::new(2));
        assert_eq!(a.best().unwrap().bits, b.best().unwrap().bits);
        assert_eq!(a.total_reads(), b.total_reads());
    }

    #[test]
    fn parallel_reads_are_bit_identical_to_serial() {
        // The determinism regression: the same seed must yield the same
        // SampleSet (states, energies, occurrence counts) for any thread
        // count, including thread counts that don't divide num_reads.
        let q = random_qubo(16, &mut Rng64::new(71));
        let collect = |threads: usize| {
            let params = SaParams {
                num_reads: 13,
                sweeps: 48,
                threads,
                ..SaParams::default()
            };
            sample_qubo(&q, &params, &mut Rng64::new(9))
        };
        let serial = collect(1);
        for threads in [2, 3, 8] {
            let parallel = collect(threads);
            assert_eq!(serial.total_reads(), parallel.total_reads());
            assert_eq!(serial.num_distinct(), parallel.num_distinct());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.bits, b.bits, "threads={threads}");
                assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "threads={threads}");
                assert_eq!(a.occurrences, b.occurrences, "threads={threads}");
            }
        }
    }

    #[test]
    fn tracked_energies_match_full_recompute() {
        let mut rng = Rng64::new(73);
        for n in [6usize, 12, 20] {
            let q = random_qubo(n, &mut rng);
            let set = sample_qubo(&q, &SaParams::default(), &mut rng);
            for s in set.iter() {
                assert!(
                    (q.energy(&s.bits) - s.energy).abs() < 1e-9 * (1.0 + s.energy.abs()),
                    "reported energy drifted from exact at n={n}"
                );
            }
        }
    }

    #[test]
    fn batched_sampling_matches_the_sequential_loop() {
        let mut rng = Rng64::new(97);
        let problems: Vec<Qubo> = (0..3).map(|_| random_qubo(10, &mut rng)).collect();
        let refs: Vec<&Qubo> = problems.iter().collect();
        let params = SaParams {
            sweeps: 24,
            num_reads: 6,
            threads: 1,
            ..SaParams::default()
        };

        let batch = sample_qubo_batch(&refs, &params, &mut Rng64::new(5));
        let mut seq_rng = Rng64::new(5);
        let sequential: Vec<SampleSet> = problems
            .iter()
            .map(|q| sample_qubo(q, &params, &mut seq_rng))
            .collect();

        assert_eq!(batch.len(), sequential.len());
        for (a, b) in batch.iter().zip(&sequential) {
            let av: Vec<_> = a.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
            let bv: Vec<_> = b.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
            assert_eq!(av, bv, "batched and sequential samples diverged");
        }
    }

    #[test]
    fn batched_sampling_is_thread_count_invariant() {
        let mut rng = Rng64::new(99);
        let problems: Vec<Qubo> = (0..4).map(|_| random_qubo(8, &mut rng)).collect();
        let refs: Vec<&Qubo> = problems.iter().collect();
        let mut params = SaParams {
            sweeps: 16,
            num_reads: 3,
            threads: 1,
            ..SaParams::default()
        };
        let serial = sample_qubo_batch(&refs, &params, &mut Rng64::new(8));
        for threads in [2, 0] {
            params.threads = threads;
            let parallel = sample_qubo_batch(&refs, &params, &mut Rng64::new(8));
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.best_energy(), b.best_energy(), "threads={threads}");
                let av: Vec<_> = a.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
                let bv: Vec<_> = b.iter().map(|s| (s.bits.clone(), s.occurrences)).collect();
                assert_eq!(av, bv, "threads={threads}");
            }
        }
    }

    #[test]
    fn batched_sampling_accepts_an_empty_batch() {
        let out = sample_qubo_batch(&[], &SaParams::default(), &mut Rng64::new(1));
        assert!(out.is_empty());
        assert!(sample_qubo_batch_seeded(&[], &SaParams::default(), &[]).is_empty());
    }

    #[test]
    fn seeded_batch_is_independent_of_batch_composition() {
        let mut rng = Rng64::new(101);
        let problems: Vec<Qubo> = (0..3).map(|_| random_qubo(9, &mut rng)).collect();
        let refs: Vec<&Qubo> = problems.iter().collect();
        let seeds = [11u64, 22, 33];
        let params = SaParams {
            sweeps: 20,
            num_reads: 4,
            threads: 1,
            ..SaParams::default()
        };

        let samples = |set: &SampleSet| -> Vec<(Vec<u8>, u64)> {
            set.iter()
                .map(|s| (s.bits.clone(), s.occurrences))
                .collect()
        };

        let together = sample_qubo_batch_seeded(&refs, &params, &seeds);
        // Each problem alone, and in reversed company: identical results.
        for (k, (q, &seed)) in problems.iter().zip(&seeds).enumerate() {
            let alone = sample_qubo_batch_seeded(&[q], &params, &[seed]);
            assert_eq!(samples(&together[k]), samples(&alone[0]), "problem {k}");
            let direct = sample_qubo(q, &params, &mut Rng64::new(seed));
            assert_eq!(samples(&together[k]), samples(&direct), "problem {k}");
        }
        let rev_refs: Vec<&Qubo> = problems.iter().rev().collect();
        let rev_seeds: Vec<u64> = seeds.iter().rev().copied().collect();
        let reversed = sample_qubo_batch_seeded(&rev_refs, &params, &rev_seeds);
        for k in 0..3 {
            assert_eq!(samples(&together[k]), samples(&reversed[2 - k]));
        }
    }

    #[test]
    #[should_panic(expected = "one seed per problem")]
    fn seeded_batch_rejects_seed_length_mismatch() {
        let mut rng = Rng64::new(103);
        let q = random_qubo(4, &mut rng);
        sample_qubo_batch_seeded(&[&q], &SaParams::default(), &[1, 2]);
    }

    #[test]
    fn traced_read_matches_untraced_bit_for_bit() {
        let q = random_qubo(14, &mut Rng64::new(81));
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let params = SaParams::default();
        let start = vec![1i8; 14];
        let plain = sa_read_csr(&csr, &params, &start, &mut Rng64::new(5));
        let (traced, trace) = sa_read_csr_traced(&csr, &params, &start, &mut Rng64::new(5));
        assert_eq!(plain.spins(), traced.spins());
        assert_eq!(plain.energy().to_bits(), traced.energy().to_bits());
        assert_eq!(trace.best_by_sweep.len(), params.sweeps + 1);
        // Running best is non-increasing and ends at/below the final energy.
        for w in trace.best_by_sweep.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(trace.best_energy() <= traced.energy() + 1e-12);
    }

    #[test]
    fn trace_sweep_counters_are_consistent() {
        let q = random_qubo(12, &mut Rng64::new(83));
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let start = vec![-1i8; 12];
        let (_, trace) = sa_read_csr_traced(&csr, &SaParams::default(), &start, &mut Rng64::new(7));
        let k = trace.sweeps_to_best();
        assert!(k <= SaParams::default().sweeps);
        assert_eq!(trace.sweeps_to_reach(trace.best_energy()), Some(k));
        // The start state always "reaches" its own energy in zero sweeps.
        assert_eq!(trace.sweeps_to_reach(trace.best_by_sweep[0]), Some(0));
        // An unreachable target reports None.
        assert_eq!(trace.sweeps_to_reach(trace.best_energy() - 1e6), None);
    }

    #[test]
    fn warm_start_none_is_exactly_sample_qubo() {
        let q = random_qubo(10, &mut Rng64::new(85));
        let params = SaParams {
            num_reads: 9,
            ..SaParams::default()
        };
        let a = sample_qubo(&q, &params, &mut Rng64::new(3));
        let b = sample_qubo_with_start(&q, &params, None, &mut Rng64::new(3));
        assert_eq!(a.total_reads(), b.total_reads());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.bits, y.bits);
            assert_eq!(x.energy.to_bits(), y.energy.to_bits());
        }
    }

    #[test]
    fn warm_started_reads_never_lose_to_their_seed() {
        // Structural guarantee: the seed joins the sample set as a
        // zero-cost candidate, so even a pathologically hot schedule (one
        // sweep at near-zero β, which randomizes the seed away) cannot
        // return anything worse than the seed itself.
        let mut rng = Rng64::new(87);
        let (q, planted) = planted_qubo(24, 60, &mut rng);
        let params = SaParams {
            beta_initial: 1e-3,
            beta_final: 1e-3,
            sweeps: 1,
            num_reads: 4,
            ..SaParams::default()
        };
        let set = sample_qubo_with_start(&q, &params, Some(&planted), &mut rng);
        assert_eq!(set.total_reads(), 5, "seed counts as one extra sample");
        assert!(
            set.best_energy() <= q.energy(&planted) + 1e-9,
            "warm-started SA regressed below its seed quality"
        );
    }

    #[test]
    #[should_panic(expected = "start length")]
    fn warm_start_length_mismatch_panics() {
        let q = random_qubo(6, &mut Rng64::new(89));
        sample_qubo_with_start(&q, &SaParams::default(), Some(&[0, 1]), &mut Rng64::new(1));
    }

    #[test]
    #[should_panic(expected = "beta_final")]
    fn invalid_params_panic() {
        let params = SaParams {
            beta_initial: 5.0,
            beta_final: 1.0,
            ..SaParams::default()
        };
        params.validate_or_panic();
    }

    #[test]
    fn single_sweep_is_accepted() {
        let mut rng = Rng64::new(37);
        let q = random_qubo(6, &mut rng);
        let params = SaParams {
            sweeps: 1,
            num_reads: 4,
            ..SaParams::default()
        };
        let set = sample_qubo(&q, &params, &mut rng);
        assert_eq!(set.total_reads(), 4);
    }
}
