//! Tabu search over QUBO problems.
//!
//! The paper's related-work section notes that D-Wave's commercial hybrid
//! offering combines quantum annealing with Tabu search \[1\]; this module
//! provides that classical component so the hybrid framework in `hqw-core`
//! can compose it as an initializer or a post-processor.
//!
//! The implementation is a standard single-flip tabu search: best-improving
//! move each iteration, a recency-based tabu list keyed by variable, and an
//! aspiration criterion that overrides tabu status when a move would beat
//! the incumbent.

use crate::model::Qubo;
use hqw_math::Rng64;

/// Tabu search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabuParams {
    /// Tabu tenure: number of iterations a flipped variable stays tabu.
    pub tenure: usize,
    /// Total number of move iterations.
    pub max_iters: usize,
    /// Stop early after this many non-improving iterations.
    pub stall_limit: usize,
}

impl Default for TabuParams {
    fn default() -> Self {
        TabuParams {
            tenure: 10,
            max_iters: 2000,
            stall_limit: 500,
        }
    }
}

/// Runs tabu search from `start`, returning `(best bits, best energy)`.
///
/// Deterministic given the start state (ties broken by variable index). The
/// tenure is clamped to `n − 1` so at least one move is always available.
pub fn tabu_search(qubo: &Qubo, start: &[u8], params: &TabuParams) -> (Vec<u8>, f64) {
    let n = qubo.num_vars();
    assert_eq!(start.len(), n, "tabu_search: start length mismatch");
    assert!(params.max_iters > 0, "tabu_search: max_iters must be > 0");
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let tenure = params.tenure.min(n.saturating_sub(1));

    let mut current = start.to_vec();
    let mut current_energy = qubo.energy(&current);
    let mut best = current.clone();
    let mut best_energy = current_energy;
    // tabu_until[k]: first iteration at which flipping k is allowed again.
    let mut tabu_until = vec![0usize; n];
    let mut stall = 0usize;

    for iter in 0..params.max_iters {
        let mut chosen: Option<(usize, f64)> = None;
        for k in 0..n {
            let delta = qubo.flip_delta(&current, k);
            let is_tabu = tabu_until[k] > iter;
            // Aspiration: tabu moves that beat the incumbent are allowed.
            let aspires = current_energy + delta < best_energy - 1e-12;
            if is_tabu && !aspires {
                continue;
            }
            match chosen {
                Some((_, best_delta)) if delta >= best_delta => {}
                _ => chosen = Some((k, delta)),
            }
        }
        let Some((k, delta)) = chosen else {
            break; // Everything tabu and nothing aspires (tiny n edge case).
        };
        current[k] ^= 1;
        current_energy += delta;
        tabu_until[k] = iter + 1 + tenure;

        if current_energy < best_energy - 1e-12 {
            best_energy = current_energy;
            best.copy_from_slice(&current);
            stall = 0;
        } else {
            stall += 1;
            if stall >= params.stall_limit {
                break;
            }
        }
    }
    // Re-evaluate to shed floating-point drift.
    let best_energy = qubo.energy(&best);
    (best, best_energy)
}

/// Tabu search from a uniform random start.
pub fn tabu_from_random(qubo: &Qubo, params: &TabuParams, rng: &mut Rng64) -> (Vec<u8>, f64) {
    let start: Vec<u8> = (0..qubo.num_vars())
        .map(|_| rng.next_bool() as u8)
        .collect();
    tabu_search(qubo, &start, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::random_qubo;
    use crate::local::steepest_descent;

    #[test]
    fn finds_optimum_on_small_problems() {
        let mut rng = Rng64::new(51);
        for _ in 0..8 {
            let q = random_qubo(12, &mut rng);
            let (_, e_best) = exhaustive_minimum(&q);
            let (_, e_tabu) = tabu_from_random(&q, &TabuParams::default(), &mut rng);
            assert!(
                (e_tabu - e_best).abs() < 1e-9,
                "tabu missed optimum: {e_tabu} vs {e_best}"
            );
        }
    }

    #[test]
    fn escapes_local_minima() {
        // Find an instance where steepest descent from all-zeros is stuck in
        // a non-global local minimum, then verify tabu escapes it.
        let mut rng = Rng64::new(53);
        let mut exercised = false;
        for _ in 0..40 {
            let q = random_qubo(10, &mut rng);
            let (desc_bits, desc_e, _) = steepest_descent(&q, &[0u8; 10]);
            let (_, e_best) = exhaustive_minimum(&q);
            if desc_e > e_best + 1e-9 {
                exercised = true;
                let (_, e_tabu) = tabu_search(&q, &desc_bits, &TabuParams::default());
                assert!(
                    e_tabu < desc_e - 1e-12,
                    "tabu failed to escape a local minimum"
                );
            }
        }
        assert!(
            exercised,
            "no local-minimum instance found; weaken the RNG seed"
        );
    }

    #[test]
    fn reported_energy_matches_bits() {
        let mut rng = Rng64::new(55);
        let q = random_qubo(16, &mut rng);
        let (bits, e) = tabu_from_random(&q, &TabuParams::default(), &mut rng);
        assert!((q.energy(&bits) - e).abs() < 1e-12);
    }

    #[test]
    fn deterministic_from_same_start() {
        let q = random_qubo(14, &mut Rng64::new(57));
        let start = vec![0u8; 14];
        let a = tabu_search(&q, &start, &TabuParams::default());
        let b = tabu_search(&q, &start, &TabuParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn zero_size_problem_is_fine() {
        let q = Qubo::new(0);
        let (bits, e) = tabu_search(&q, &[], &TabuParams::default());
        assert!(bits.is_empty());
        assert_eq!(e, 0.0);
    }
}
