//! Dense QUBO model (the paper's Eq. 1).
//!
//! Storage is the upper triangle (including the diagonal) in row-major
//! order, matching the paper's convention that `Q ∈ ℝ^{N×N}` is upper
//! triangular: linear terms live on the diagonal (`q² = q` for binary
//! variables) and each pair interaction is stored once at `(min, max)`.

use crate::ising::Ising;

/// A QUBO problem: minimize `E(q) = Σ_{i≤j} Q_ij q_i q_j` over `q ∈ {0,1}ⁿ`.
#[derive(Clone, PartialEq)]
pub struct Qubo {
    n: usize,
    /// Upper-triangular coefficients, row-major:
    /// `(i,j)` with `j ≥ i` lives at `i·n − i(i−1)/2 + (j − i)`.
    coeffs: Vec<f64>,
}

impl std::fmt::Debug for Qubo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Qubo(n={}, nnz={}, max|Q|={:.4})",
            self.n,
            self.nonzero_count(),
            self.max_abs_coeff()
        )
    }
}

impl Qubo {
    /// Creates an all-zero QUBO over `n` variables.
    pub fn new(n: usize) -> Self {
        Qubo {
            n,
            coeffs: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// Number of binary variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    #[inline]
    fn tri_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.n);
        // Row i starts after Σ_{r<i}(n−r) = i(2n−i+1)/2 entries.
        i * (2 * self.n - i + 1) / 2 + (j - i)
    }

    /// Coefficient `Q_ij`; the index pair is canonicalized, so `get(3, 1)`
    /// returns the stored `Q_{1,3}`.
    ///
    /// # Panics
    /// Panics when an index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "Qubo::get: index out of range");
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        self.coeffs[self.tri_index(a, b)]
    }

    /// Sets coefficient `Q_ij` (indices canonicalized).
    ///
    /// # Panics
    /// Panics when an index is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "Qubo::set: index out of range");
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        let idx = self.tri_index(a, b);
        self.coeffs[idx] = value;
    }

    /// Adds to coefficient `Q_ij` (indices canonicalized).
    ///
    /// # Panics
    /// Panics when an index is out of range.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "Qubo::add: index out of range");
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        let idx = self.tri_index(a, b);
        self.coeffs[idx] += value;
    }

    /// Linear (diagonal) coefficient `Q_ii`.
    #[inline]
    pub fn diagonal(&self, i: usize) -> f64 {
        self.get(i, i)
    }

    /// Off-diagonal coupling between two distinct variables (symmetric view).
    ///
    /// # Panics
    /// Panics when `i == j` or an index is out of range.
    #[inline]
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "Qubo::coupling: i == j has no coupling");
        self.get(i, j)
    }

    /// Evaluates the QUBO energy of a 0/1 assignment.
    ///
    /// # Panics
    /// Panics when `bits.len() != num_vars()` (debug builds also check that
    /// each entry is 0 or 1).
    pub fn energy(&self, bits: &[u8]) -> f64 {
        assert_eq!(bits.len(), self.n, "Qubo::energy: state length mismatch");
        debug_assert!(bits.iter().all(|&b| b <= 1), "bits must be 0/1");
        let mut e = 0.0;
        let mut idx = 0;
        for i in 0..self.n {
            if bits[i] == 0 {
                idx += self.n - i;
                continue;
            }
            // q_i = 1: add Q_ii and all Q_ij with q_j = 1, j > i.
            e += self.coeffs[idx];
            for j in i + 1..self.n {
                if bits[j] == 1 {
                    e += self.coeffs[idx + (j - i)];
                }
            }
            idx += self.n - i;
        }
        e
    }

    /// Energy change from flipping bit `k` in `bits` (without applying it).
    ///
    /// `ΔE = (1 − 2 q_k) · (Q_kk + Σ_{j≠k} Q̃_kj q_j)` where `Q̃` is the
    /// symmetric view of the couplings.
    ///
    /// # Panics
    /// Panics when lengths mismatch or `k` is out of range.
    pub fn flip_delta(&self, bits: &[u8], k: usize) -> f64 {
        assert_eq!(bits.len(), self.n, "Qubo::flip_delta: length mismatch");
        assert!(k < self.n, "Qubo::flip_delta: index out of range");
        let mut field = self.diagonal(k);
        for j in 0..self.n {
            if j != k && bits[j] == 1 {
                field += self.get(k, j);
            }
        }
        let sign = 1.0 - 2.0 * bits[k] as f64;
        sign * field
    }

    /// Largest absolute coefficient (0 for an empty problem).
    pub fn max_abs_coeff(&self) -> f64 {
        self.coeffs.iter().map(|c| c.abs()).fold(0.0, f64::max)
    }

    /// Number of non-zero coefficients.
    pub fn nonzero_count(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0.0).count()
    }

    /// Uniformly rescales every coefficient.
    pub fn scale(&mut self, k: f64) {
        for c in &mut self.coeffs {
            *c *= k;
        }
    }

    /// Converts to the Ising form. Returns `(ising, offset)` such that for
    /// every assignment, `qubo.energy(q) = ising.energy(s) + offset` with
    /// `s_i = 2 q_i − 1`.
    pub fn to_ising(&self) -> (Ising, f64) {
        let n = self.n;
        let mut ising = Ising::new(n);
        let mut offset = 0.0;
        for i in 0..n {
            let d = self.diagonal(i);
            ising.add_h(i, d / 2.0);
            offset += d / 2.0;
            for j in i + 1..n {
                let c = self.get(i, j);
                if c != 0.0 {
                    ising.add_coupling(i, j, c / 4.0);
                    ising.add_h(i, c / 4.0);
                    ising.add_h(j, c / 4.0);
                    offset += c / 4.0;
                }
            }
        }
        (ising, offset)
    }

    /// Builds a QUBO from an Ising model (inverse of [`Qubo::to_ising`]).
    ///
    /// Substituting `s = 2q − 1`:
    ///
    /// ```text
    ///   Σ h_i s_i      → Σ 2 h_i q_i − Σ h_i
    ///   Σ J_ij s_i s_j → Σ (4 J_ij q_i q_j − 2 J_ij q_i − 2 J_ij q_j) + Σ J_ij
    /// ```
    ///
    /// A QUBO has no constant term, so the conversion returns
    /// `(qubo, constant)` with `qubo.energy(q) + constant = ising.energy(s) + offset`
    /// for every assignment. Round-tripping a QUBO through
    /// [`Qubo::to_ising`] yields `constant == 0`.
    pub fn from_ising_with_constant(ising: &Ising, offset: f64) -> (Qubo, f64) {
        let n = ising.num_vars();
        let mut q = Qubo::new(n);
        let mut constant = offset;
        for i in 0..n {
            q.add(i, i, 2.0 * ising.h(i));
            constant -= ising.h(i);
        }
        for &(i, j, jij) in ising.edges() {
            q.add(i, j, 4.0 * jij);
            q.add(i, i, -2.0 * jij);
            q.add(j, j, -2.0 * jij);
            constant += jij;
        }
        (q, constant)
    }

    /// Iterates over non-zero entries as `(i, j, value)` with `i ≤ j`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (i..self.n).filter_map(move |j| {
                let v = self.get(i, j);
                (v != 0.0).then_some((i, j, v))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::bits_to_spins;

    /// 2-variable QUBO with known landscape:
    /// E = q0 − 2 q1 + 3 q0 q1  →  E(00)=0, E(10)=1, E(01)=−2, E(11)=2.
    fn tiny() -> Qubo {
        let mut q = Qubo::new(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, -2.0);
        q.set(0, 1, 3.0);
        q
    }

    #[test]
    fn energy_of_all_states() {
        let q = tiny();
        assert_eq!(q.energy(&[0, 0]), 0.0);
        assert_eq!(q.energy(&[1, 0]), 1.0);
        assert_eq!(q.energy(&[0, 1]), -2.0);
        assert_eq!(q.energy(&[1, 1]), 2.0);
    }

    #[test]
    fn get_canonicalizes_indices() {
        let q = tiny();
        assert_eq!(q.get(1, 0), 3.0);
        assert_eq!(q.get(0, 1), 3.0);
    }

    #[test]
    fn flip_delta_matches_full_recompute() {
        let q = tiny();
        for bits in [[0u8, 0], [1, 0], [0, 1], [1, 1]] {
            for k in 0..2 {
                let mut flipped = bits;
                flipped[k] ^= 1;
                let expected = q.energy(&flipped) - q.energy(&bits);
                assert!((q.flip_delta(&bits, k) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ising_round_trip_preserves_energy() {
        let q = tiny();
        let (ising, offset) = q.to_ising();
        for bits in [[0u8, 0], [1, 0], [0, 1], [1, 1]] {
            let spins = bits_to_spins(&bits);
            assert!(
                (q.energy(&bits) - (ising.energy(&spins) + offset)).abs() < 1e-12,
                "mismatch at {bits:?}"
            );
        }
    }

    #[test]
    fn from_ising_with_constant_round_trips() {
        let q = tiny();
        let (ising, offset) = q.to_ising();
        let (q2, constant) = Qubo::from_ising_with_constant(&ising, offset);
        assert!(constant.abs() < 1e-12, "QUBO→Ising→QUBO constant leak");
        for bits in [[0u8, 0], [1, 0], [0, 1], [1, 1]] {
            assert!((q.energy(&bits) - q2.energy(&bits)).abs() < 1e-12);
        }
    }

    #[test]
    fn add_accumulates() {
        let mut q = Qubo::new(3);
        q.add(2, 0, 1.5);
        q.add(0, 2, 2.5);
        assert_eq!(q.get(0, 2), 4.0);
    }

    #[test]
    fn stats_helpers() {
        let q = tiny();
        assert_eq!(q.nonzero_count(), 3);
        assert_eq!(q.max_abs_coeff(), 3.0);
        let entries: Vec<_> = q.iter_nonzero().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (0, 1, 3.0), (1, 1, -2.0)]);
    }

    #[test]
    fn scale_multiplies_energy() {
        let mut q = tiny();
        q.scale(2.0);
        assert_eq!(q.energy(&[1, 1]), 4.0);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn energy_rejects_wrong_length() {
        tiny().energy(&[0, 1, 0]);
    }
}
