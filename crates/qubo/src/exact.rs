//! Exact QUBO solvers for ground-truth verification.
//!
//! * [`exhaustive_minimum`] — Gray-code enumeration of all `2ⁿ` states with
//!   `O(n)` incremental updates per state; practical to ~26 variables.
//! * [`branch_and_bound`] — depth-first search with an admissible bound;
//!   reaches the mid-30s of variables on MIMO-style instances, enough to
//!   cross-check the 36-variable problems of Figure 6.
//!
//! The noiseless MIMO instances of the paper have an *analytically known*
//! ground state (the transmitted symbols, §4.2), so these solvers exist to
//! validate that knowledge and to certify preprocessing/constraint
//! transformations on arbitrary instances.

use crate::model::Qubo;

/// Enumerates all `2ⁿ` assignments, returning `(argmin bits, min energy)`.
///
/// Walks states in Gray-code order so consecutive states differ by one bit,
/// updating the energy incrementally via [`Qubo::flip_delta`].
///
/// # Panics
/// Panics when `n > 26` (the enumeration would exceed ~10⁸ states) or `n == 0`.
pub fn exhaustive_minimum(qubo: &Qubo) -> (Vec<u8>, f64) {
    let n = qubo.num_vars();
    assert!(n > 0, "exhaustive_minimum: empty problem");
    assert!(
        n <= 26,
        "exhaustive_minimum: {n} variables is too large; use branch_and_bound"
    );

    let mut bits = vec![0u8; n];
    let mut energy = qubo.energy(&bits); // all-zeros energy (== 0 by Eq. 1)
    let mut best_bits = bits.clone();
    let mut best_energy = energy;

    let total: u64 = 1u64 << n;
    for counter in 1..total {
        // Bit that changes between Gray(counter-1) and Gray(counter).
        let flip = counter.trailing_zeros() as usize;
        energy += qubo.flip_delta(&bits, flip);
        bits[flip] ^= 1;
        if energy < best_energy {
            best_energy = energy;
            best_bits.copy_from_slice(&bits);
        }
    }
    (best_bits, best_energy)
}

/// Counts the assignments attaining the minimum (within `tol`), returning
/// `(min energy, count)`. Same size limits as [`exhaustive_minimum`].
///
/// # Panics
/// Panics when `n > 26` or `n == 0`.
pub fn ground_state_degeneracy(qubo: &Qubo, tol: f64) -> (f64, u64) {
    let n = qubo.num_vars();
    assert!(
        n > 0 && n <= 26,
        "ground_state_degeneracy: size out of range"
    );

    let mut bits = vec![0u8; n];
    let mut energy = qubo.energy(&bits);
    let mut best = energy;
    let mut energies = Vec::with_capacity(1 << n);
    energies.push(energy);
    let total: u64 = 1u64 << n;
    for counter in 1..total {
        let flip = counter.trailing_zeros() as usize;
        energy += qubo.flip_delta(&bits, flip);
        bits[flip] ^= 1;
        energies.push(energy);
        if energy < best {
            best = energy;
        }
    }
    let count = energies.iter().filter(|&&e| e <= best + tol).count() as u64;
    (best, count)
}

/// Depth-first branch and bound, returning `(argmin bits, min energy)`.
///
/// Variables are assigned in descending order of "influence" (|diagonal| +
/// Σ|couplings|) and each node is pruned with an admissible lower bound:
/// the energy of the fixed part plus, for every unset variable, the most
/// optimistic contribution it could ever make (its conditional diagonal plus
/// all negative couplings to other unset variables, if setting it to 1 is
/// beneficial; zero otherwise). Negative pair terms are counted toward both
/// endpoints, which only lowers the bound, keeping it admissible.
///
/// `initial_upper_bound` lets callers seed pruning with a known-good energy
/// (e.g. from greedy search); pass `f64::INFINITY` when unknown.
pub fn branch_and_bound(qubo: &Qubo, initial_upper_bound: f64) -> (Vec<u8>, f64) {
    let n = qubo.num_vars();
    assert!(n > 0, "branch_and_bound: empty problem");

    // Assignment order: most influential variables first.
    let mut order: Vec<usize> = (0..n).collect();
    let influence: Vec<f64> = (0..n)
        .map(|i| {
            let mut s = qubo.diagonal(i).abs();
            for j in 0..n {
                if j != i {
                    s += qubo.get(i, j).abs();
                }
            }
            s
        })
        .collect();
    order.sort_by(|&a, &b| influence[b].partial_cmp(&influence[a]).unwrap());

    let mut bits = vec![0u8; n];
    let mut assigned = vec![false; n];
    let mut best_bits = vec![0u8; n];
    let mut best_energy = initial_upper_bound;
    let mut found = false;

    // If nothing beats the seed bound we still must return a valid state.
    struct Ctx<'a> {
        qubo: &'a Qubo,
        order: Vec<usize>,
        n: usize,
    }

    fn lower_bound(ctx: &Ctx, bits: &[u8], assigned: &[bool], fixed_energy: f64) -> f64 {
        let mut bound = fixed_energy;
        for i in 0..ctx.n {
            if assigned[i] {
                continue;
            }
            // Conditional diagonal: Q_ii plus couplings to fixed ones.
            let mut d = ctx.qubo.diagonal(i);
            for j in 0..ctx.n {
                if j != i && assigned[j] && bits[j] == 1 {
                    d += ctx.qubo.get(i, j);
                }
            }
            // Optimistic free-free couplings (count all negatives).
            let mut neg = 0.0;
            for j in 0..ctx.n {
                if j != i && !assigned[j] {
                    let c = ctx.qubo.get(i, j);
                    if c < 0.0 {
                        neg += c;
                    }
                }
            }
            let best_contrib = (d + neg).min(0.0);
            bound += best_contrib;
        }
        bound
    }

    #[allow(clippy::too_many_arguments)] // recursive worker: explicit state beats a context struct
    fn dfs(
        ctx: &Ctx,
        depth: usize,
        bits: &mut [u8],
        assigned: &mut [bool],
        fixed_energy: f64,
        best_bits: &mut Vec<u8>,
        best_energy: &mut f64,
        found: &mut bool,
    ) {
        if depth == ctx.n {
            if fixed_energy < *best_energy || !*found {
                *best_energy = fixed_energy;
                best_bits.copy_from_slice(bits);
                *found = true;
            }
            return;
        }
        if lower_bound(ctx, bits, assigned, fixed_energy) >= *best_energy && *found {
            return;
        }
        let var = ctx.order[depth];
        // Energy contribution of setting `var` to 1 given the fixed part.
        let mut contrib = ctx.qubo.diagonal(var);
        for j in 0..ctx.n {
            if j != var && assigned[j] && bits[j] == 1 {
                contrib += ctx.qubo.get(var, j);
            }
        }
        // Explore the more promising branch first.
        let branches: [(u8, f64); 2] = if contrib < 0.0 {
            [(1, contrib), (0, 0.0)]
        } else {
            [(0, 0.0), (1, contrib)]
        };
        for (value, delta) in branches {
            bits[var] = value;
            assigned[var] = true;
            dfs(
                ctx,
                depth + 1,
                bits,
                assigned,
                fixed_energy + delta,
                best_bits,
                best_energy,
                found,
            );
            assigned[var] = false;
            bits[var] = 0;
        }
    }

    let ctx = Ctx { qubo, order, n };
    dfs(
        &ctx,
        0,
        &mut bits,
        &mut assigned,
        0.0,
        &mut best_bits,
        &mut best_energy,
        &mut found,
    );

    if !found {
        // The seed upper bound was already optimal; fall back to the all-zero
        // state only if it matches, otherwise re-run unbounded.
        return branch_and_bound(qubo, f64::INFINITY);
    }
    (best_bits, best_energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_qubo;
    use hqw_math::Rng64;

    #[test]
    fn exhaustive_on_known_landscape() {
        // E = q0 − 2 q1 + 3 q0 q1: optimum (0,1) at −2.
        let mut q = Qubo::new(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, -2.0);
        q.set(0, 1, 3.0);
        let (bits, e) = exhaustive_minimum(&q);
        assert_eq!(bits, vec![0, 1]);
        assert_eq!(e, -2.0);
    }

    #[test]
    fn exhaustive_handles_all_zero_problem() {
        let q = Qubo::new(4);
        let (_, e) = exhaustive_minimum(&q);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn degeneracy_counts_ties() {
        // E = q0·q1 (penalize both on): minimum 0 attained by 3 states.
        let mut q = Qubo::new(2);
        q.set(0, 1, 1.0);
        let (e, count) = ground_state_degeneracy(&q, 1e-9);
        assert_eq!(e, 0.0);
        assert_eq!(count, 3);
    }

    #[test]
    fn branch_and_bound_matches_exhaustive() {
        let mut rng = Rng64::new(17);
        for n in [4usize, 8, 12, 16] {
            for _ in 0..5 {
                let q = random_qubo(n, &mut rng);
                let (_, e1) = exhaustive_minimum(&q);
                let (b2, e2) = branch_and_bound(&q, f64::INFINITY);
                assert!((e1 - e2).abs() < 1e-9, "n={n}: exhaustive {e1} vs bnb {e2}");
                assert!((q.energy(&b2) - e2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn branch_and_bound_with_seed_bound() {
        let mut rng = Rng64::new(23);
        let q = random_qubo(12, &mut rng);
        let (_, e_true) = exhaustive_minimum(&q);
        // Seeding with the exact optimum must still return an optimal state.
        let (bits, e) = branch_and_bound(&q, e_true);
        assert!((e - e_true).abs() < 1e-9);
        assert!((q.energy(&bits) - e).abs() < 1e-9);
        // Seeding with a loose bound too.
        let (_, e2) = branch_and_bound(&q, e_true + 100.0);
        assert!((e2 - e_true).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_rejects_oversized_problems() {
        let q = Qubo::new(27);
        let _ = exhaustive_minimum(&q);
    }
}
