//! Random problem generators for tests, benches and calibration.
//!
//! The *evaluation* instances of the paper come from the MIMO reduction in
//! `hqw-phy`; the generators here produce structure-free problems used to
//! exercise solvers, preprocessing and the annealing engines in isolation.

use crate::ising::Ising;
use crate::model::Qubo;
use hqw_math::Rng64;

/// Dense random QUBO with i.i.d. uniform coefficients in `[-1, 1]`.
pub fn random_qubo(n: usize, rng: &mut Rng64) -> Qubo {
    let mut q = Qubo::new(n);
    for i in 0..n {
        for j in i..n {
            q.set(i, j, rng.next_range(-1.0, 1.0));
        }
    }
    q
}

/// Dense random QUBO with the given edge density in `(0, 1]` (diagonal terms
/// are always present).
pub fn sparse_random_qubo(n: usize, density: f64, rng: &mut Rng64) -> Qubo {
    assert!(
        (0.0..=1.0).contains(&density),
        "sparse_random_qubo: density out of range"
    );
    let mut q = Qubo::new(n);
    for i in 0..n {
        q.set(i, i, rng.next_range(-1.0, 1.0));
        for j in i + 1..n {
            if rng.next_bernoulli(density) {
                q.set(i, j, rng.next_range(-1.0, 1.0));
            }
        }
    }
    q
}

/// Sherrington-Kirkpatrick-style spin glass: complete graph with Gaussian
/// couplings (`σ = 1/√n`) and no fields.
pub fn sk_spin_glass(n: usize, rng: &mut Rng64) -> Ising {
    let mut ising = Ising::new(n);
    let sigma = 1.0 / (n as f64).sqrt();
    for i in 0..n {
        for j in i + 1..n {
            ising.set_coupling(i, j, rng.next_gaussian_with(0.0, sigma));
        }
    }
    ising
}

/// Random ±J spin glass on a complete graph.
pub fn pm_j_spin_glass(n: usize, rng: &mut Rng64) -> Ising {
    let mut ising = Ising::new(n);
    for i in 0..n {
        for j in i + 1..n {
            let j_val = if rng.next_bool() { 1.0 } else { -1.0 };
            ising.set_coupling(i, j, j_val);
        }
    }
    ising
}

/// QUBO with a *planted* optimum: the returned `bits` are guaranteed to be a
/// global minimizer with energy `-(weight sum)`.
///
/// Construction: for each chosen pair, add a ferromagnetic-in-disguise term
/// that is minimized exactly when both variables match the planted values.
/// Used to validate samplers on instances with a known answer at sizes where
/// enumeration is impossible.
pub fn planted_qubo(n: usize, pairs: usize, rng: &mut Rng64) -> (Qubo, Vec<u8>) {
    let planted: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
    let mut ising = Ising::new(n);
    for _ in 0..pairs {
        let i = rng.next_index(n);
        let mut j = rng.next_index(n);
        while j == i {
            j = rng.next_index(n);
        }
        let w = rng.next_range(0.1, 1.0);
        // Energy term −w·s_i s_j σ_i σ_j where σ are the planted spins:
        // minimized when s matches the planted correlation.
        let si = if planted[i] == 1 { 1.0 } else { -1.0 };
        let sj = if planted[j] == 1 { 1.0 } else { -1.0 };
        ising.add_coupling(i, j, -w * si * sj);
    }
    // Tie-break the global Z2 symmetry with a weak field on variable 0 so the
    // planted state is the unique optimum (up to degenerate zero-weight vars).
    let s0 = if planted[0] == 1 { 1.0 } else { -1.0 };
    ising.add_h(0, -0.05 * s0);

    let (qubo, _constant) = Qubo::from_ising_with_constant(&ising, 0.0);
    (qubo, planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;

    #[test]
    fn random_qubo_is_deterministic_per_seed() {
        let a = random_qubo(10, &mut Rng64::new(5));
        let b = random_qubo(10, &mut Rng64::new(5));
        for i in 0..10 {
            for j in i..10 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }

    #[test]
    fn sparse_density_zero_is_diagonal_only() {
        let q = sparse_random_qubo(8, 0.0, &mut Rng64::new(1));
        for i in 0..8 {
            for j in i + 1..8 {
                assert_eq!(q.get(i, j), 0.0);
            }
        }
        assert!(q.nonzero_count() <= 8);
    }

    #[test]
    fn sk_glass_has_no_fields_and_full_graph() {
        let g = sk_spin_glass(6, &mut Rng64::new(2));
        assert!(g.h_slice().iter().all(|&h| h == 0.0));
        assert_eq!(g.edges().len(), 6 * 5 / 2);
    }

    #[test]
    fn pm_j_couplings_are_unit_magnitude() {
        let g = pm_j_spin_glass(5, &mut Rng64::new(3));
        assert!(g.edges().iter().all(|e| e.2.abs() == 1.0));
    }

    #[test]
    fn planted_state_is_global_minimum() {
        let mut rng = Rng64::new(11);
        for _ in 0..5 {
            let (q, planted) = planted_qubo(10, 25, &mut rng);
            let (_, e_best) = exhaustive_minimum(&q);
            let e_planted = q.energy(&planted);
            assert!(
                (e_planted - e_best).abs() < 1e-9,
                "planted {e_planted} vs best {e_best}"
            );
        }
    }
}
