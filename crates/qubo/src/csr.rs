//! Flat (CSR) Ising representation and incrementally-maintained local
//! fields — the shared substrate of every Monte-Carlo sweep kernel.
//!
//! [`crate::Ising`] stores its adjacency as `Vec<Vec<(usize, f64)>>`, which
//! is convenient to build but pointer-chases on every neighbor visit.
//! [`CsrIsing`] flattens the mirrored adjacency into three contiguous arrays
//! (`row_ptr` / `col_idx` / `weight`), and [`LocalFieldState`] keeps the
//! effective local field `h_eff[k] = h_k + Σ_j J_kj s_j` cached per spin so
//! a single-flip proposal costs **O(1)** instead of O(degree):
//!
//! * proposal:  `ΔE = −2 s_k h_eff[k]` — two multiplies, no memory walk;
//! * accepted flip: update the caches of `k`'s neighbors — O(degree), but
//!   only on *accepted* moves.
//!
//! A full Metropolis sweep therefore costs `O(n + accepted·deg)` rather than
//! `O(n·deg)`, which is the difference between toy 12-spin tests and the
//! large-MIMO instances the roadmap targets. The tracked energy makes
//! per-read energy reporting free as well.

use crate::ising::Ising;
use std::sync::OnceLock;

/// A compressed-sparse-row view of an Ising problem.
///
/// Rows mirror both endpoints of every edge (like `Ising`'s adjacency), so
/// `row(k)` enumerates every neighbor of `k` exactly once.
///
/// On top of the plain `row_ptr`/`col_idx`/`weight` triple the builder
/// detects **contiguous column runs** (maximal stretches where
/// `col_idx[t+1] == col_idx[t] + 1`). Dense rows — e.g. every row of a
/// dense-QUBO-derived Ising, which is `[0..k) ∪ (k..n)` — collapse to two
/// runs, turning the per-flip neighbor update from a gather-scatter through
/// `col_idx` into contiguous slice AXPYs the compiler auto-vectorizes.
/// Because a run replays exactly the same element-wise operations in exactly
/// the same order as the gather loop, the run path is **bit-identical** to
/// it and safe for the `Exact` kernel contract.
#[derive(Debug, Clone, Default)]
pub struct CsrIsing {
    h: Vec<f64>,
    /// Neighbors of `i` live at `row_ptr[i]..row_ptr[i+1]`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    weight: Vec<f64>,
    /// Runs of row `i` live at `run_ptr[i]..run_ptr[i+1]`.
    run_ptr: Vec<u32>,
    /// First column of each run.
    run_col: Vec<u32>,
    /// Entry offset (into `col_idx`/`weight`) where each run starts, with a
    /// trailing `nnz` sentinel; run `r` covers entries
    /// `run_ofs[r]..run_ofs[r+1]`.
    run_ofs: Vec<u32>,
    /// Lazily-built greedy coloring (Fast-kernel sweep order).
    coloring: OnceLock<Coloring>,
    /// Lazily-built f32 weight mirror (Fast-kernel field updates).
    weight_f32: OnceLock<Vec<f32>>,
}

impl CsrIsing {
    /// Flattens an adjacency-list Ising model. O(n + edges).
    pub fn from_ising(ising: &Ising) -> Self {
        let n = ising.num_vars();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut weight = Vec::new();
        let mut run_ptr = Vec::with_capacity(n + 1);
        let mut run_col = Vec::new();
        let mut run_ofs = Vec::new();
        row_ptr.push(0u32);
        run_ptr.push(0u32);
        for i in 0..n {
            let mut prev_col = u32::MAX - 1; // never adjacent to a real column
            for &(j, w) in ising.neighbors(i) {
                let col = j as u32;
                if col != prev_col.wrapping_add(1) {
                    run_col.push(col);
                    run_ofs.push(col_idx.len() as u32);
                }
                prev_col = col;
                col_idx.push(col);
                weight.push(w);
            }
            row_ptr.push(col_idx.len() as u32);
            run_ptr.push(run_col.len() as u32);
        }
        run_ofs.push(col_idx.len() as u32);
        CsrIsing {
            h: ising.h_slice().to_vec(),
            row_ptr,
            col_idx,
            weight,
            run_ptr,
            run_col,
            run_ofs,
            coloring: OnceLock::new(),
            weight_f32: OnceLock::new(),
        }
    }

    /// Number of spins.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.h.len()
    }

    /// Linear field `h_k`.
    #[inline]
    pub fn h(&self, k: usize) -> f64 {
        self.h[k]
    }

    /// All linear fields.
    #[inline]
    pub fn h_slice(&self) -> &[f64] {
        &self.h
    }

    /// Number of stored (mirrored) neighbor entries — `2 × edges`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Degree of spin `k`.
    #[inline]
    pub fn degree(&self, k: usize) -> usize {
        (self.row_ptr[k + 1] - self.row_ptr[k]) as usize
    }

    /// Neighbor columns and weights of spin `k` as parallel slices.
    #[inline]
    pub fn row(&self, k: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[k] as usize;
        let hi = self.row_ptr[k + 1] as usize;
        (&self.col_idx[lo..hi], &self.weight[lo..hi])
    }

    /// Local field `h_k + Σ_j J_kj s_j` recomputed from scratch. O(degree).
    #[inline]
    pub fn local_field(&self, spins: &[i8], k: usize) -> f64 {
        debug_assert_eq!(spins.len(), self.num_vars());
        let (cols, ws) = self.row(k);
        let mut f = self.h[k];
        for (&j, &w) in cols.iter().zip(ws) {
            f += w * spins[j as usize] as f64;
        }
        f
    }

    /// Energy change from flipping spin `k` (from-scratch; prefer
    /// [`LocalFieldState::flip_delta`] in sweep loops).
    #[inline]
    pub fn flip_delta(&self, spins: &[i8], k: usize) -> f64 {
        -2.0 * spins[k] as f64 * self.local_field(spins, k)
    }

    /// Ising energy of a ±1 assignment, counting each edge once.
    pub fn energy(&self, spins: &[i8]) -> f64 {
        assert_eq!(spins.len(), self.num_vars(), "CsrIsing::energy: length");
        let mut e = 0.0;
        for k in 0..self.num_vars() {
            let sk = spins[k] as f64;
            e += self.h[k] * sk;
            let (cols, ws) = self.row(k);
            for (&j, &w) in cols.iter().zip(ws) {
                // Each edge is mirrored; count it from its lower endpoint.
                if (j as usize) > k {
                    e += w * sk * spins[j as usize] as f64;
                }
            }
        }
        e
    }

    /// Fills `out[k] = h_k + Σ_j J_kj s_j` for every spin. O(n + edges).
    ///
    /// `spins` may be any slice of ±1 values of length `num_vars()` — engines
    /// use this to (re)build per-replica caches.
    pub fn fill_local_fields(&self, spins: &[i8], out: &mut [f64]) {
        assert_eq!(spins.len(), self.num_vars());
        assert_eq!(out.len(), self.num_vars());
        for k in 0..self.num_vars() {
            let (cols, ws) = self.row(k);
            let mut f = self.h[k];
            for (&j, &w) in cols.iter().zip(ws) {
                f += w * spins[j as usize] as f64;
            }
            out[k] = f;
        }
    }

    /// Number of contiguous-column runs across all rows. `nnz / num_runs`
    /// is the average run length — the vectorization win of [`Self::axpy_row`]
    /// over the gather loop it replaces.
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.run_col.len()
    }

    /// `field[j] += w_kj * ds` for every neighbor `j` of `k`, walking the
    /// row's contiguous-column runs so each run is a slice AXPY the compiler
    /// vectorizes.
    ///
    /// Performs exactly the same element-wise multiply-adds in exactly the
    /// same order as the `col_idx` gather loop (runs tile the row in entry
    /// order, and no accumulation is reassociated), so results are
    /// **bit-identical** — this is the `Exact`-kernel flip update.
    #[inline]
    pub fn axpy_row(&self, field: &mut [f64], k: usize, ds: f64) {
        let lo = self.row_ptr[k] as usize;
        let hi = self.row_ptr[k + 1] as usize;
        let r_lo = self.run_ptr[k] as usize;
        let r_hi = self.run_ptr[k + 1] as usize;
        // Runs pay per-run loop overhead: on rows that barely compress
        // (scattered sparse columns → singleton runs) the plain gather is
        // faster. Either path performs the identical multiply-adds in the
        // identical order, so the choice cannot change a single bit.
        if hi - lo < 2 * (r_hi - r_lo) {
            for (&j, &w) in self.col_idx[lo..hi].iter().zip(&self.weight[lo..hi]) {
                field[j as usize] += w * ds;
            }
            return;
        }
        for r in r_lo..r_hi {
            let e_lo = self.run_ofs[r] as usize;
            let e_hi = self.run_ofs[r + 1] as usize;
            let c = self.run_col[r] as usize;
            let dst = &mut field[c..c + (e_hi - e_lo)];
            for (f, &w) in dst.iter_mut().zip(&self.weight[e_lo..e_hi]) {
                *f += w * ds;
            }
        }
    }

    /// f32 mirror of the coupling weights, built on first use (Fast kernel).
    #[inline]
    pub fn weights_f32(&self) -> &[f32] {
        self.weight_f32
            .get_or_init(|| self.weight.iter().map(|&w| w as f32).collect())
    }

    /// Neighbor columns and f32 weights of spin `k` as parallel slices
    /// (Fast-kernel cache rebuilds).
    #[inline]
    pub fn row_f32(&self, k: usize) -> (&[u32], &[f32]) {
        let ws = self.weights_f32();
        let lo = self.row_ptr[k] as usize;
        let hi = self.row_ptr[k + 1] as usize;
        (&self.col_idx[lo..hi], &ws[lo..hi])
    }

    /// f32 variant of [`Self::axpy_row`] for the Fast kernel's single-precision
    /// field cache. Not bit-exact against the f64 path (and doesn't claim to
    /// be) — Fast mode refreshes the cache periodically and recomputes final
    /// energies exactly.
    #[inline]
    pub fn axpy_row_f32(&self, field: &mut [f32], k: usize, ds: f32) {
        let ws = self.weights_f32();
        let lo = self.row_ptr[k] as usize;
        let hi = self.row_ptr[k + 1] as usize;
        let r_lo = self.run_ptr[k] as usize;
        let r_hi = self.run_ptr[k + 1] as usize;
        // Same runs-vs-gather dispatch as `axpy_row`; see the comment there.
        if hi - lo < 2 * (r_hi - r_lo) {
            for (&j, &w) in self.col_idx[lo..hi].iter().zip(&ws[lo..hi]) {
                field[j as usize] += w * ds;
            }
            return;
        }
        for r in r_lo..r_hi {
            let e_lo = self.run_ofs[r] as usize;
            let e_hi = self.run_ofs[r + 1] as usize;
            let c = self.run_col[r] as usize;
            let dst = &mut field[c..c + (e_hi - e_lo)];
            let src = &ws[e_lo..e_hi];
            // Manual 8-lane unroll: fixed-size chunks let the compiler keep
            // two 4-wide vector adds in flight per iteration with no bounds
            // checks, which matters because this is the accept-path inner
            // loop of the Fast sweep kernel.
            let mut dc = dst.chunks_exact_mut(8);
            let mut sc = src.chunks_exact(8);
            for (d, w) in (&mut dc).zip(&mut sc) {
                d[0] += w[0] * ds;
                d[1] += w[1] * ds;
                d[2] += w[2] * ds;
                d[3] += w[3] * ds;
                d[4] += w[4] * ds;
                d[5] += w[5] * ds;
                d[6] += w[6] * ds;
                d[7] += w[7] * ds;
            }
            for (f, &w) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
                *f += w * ds;
            }
        }
    }

    /// Fills `out[k] = h_k + Σ_j J_kj s_j` in single precision from a
    /// bit-packed spin word array (Fast-kernel cache rebuild).
    pub fn fill_local_fields_f32(&self, spins: &BitSpins, out: &mut [f32]) {
        assert_eq!(spins.len(), self.num_vars());
        assert_eq!(out.len(), self.num_vars());
        let ws = self.weights_f32();
        // Unpack the signs once (n ops) so the nnz-sized inner loop is a
        // plain gather-multiply instead of a shift/mask/convert per entry.
        let signs: Vec<f32> = (0..self.num_vars()).map(|j| spins.sign_f32(j)).collect();
        for k in 0..self.num_vars() {
            let lo = self.row_ptr[k] as usize;
            let hi = self.row_ptr[k + 1] as usize;
            let mut f = self.h[k] as f32;
            for (&j, &w) in self.col_idx[lo..hi].iter().zip(&ws[lo..hi]) {
                f += w * signs[j as usize];
            }
            out[k] = f;
        }
    }

    /// Greedy graph coloring of the coupling graph, built on first use.
    ///
    /// Spins within one color class share no coupling, so a Fast-mode sweep
    /// can propose a whole class back-to-back without any proposal reading a
    /// field another proposal in the same class just wrote — the checkerboard
    /// decomposition that also lets multicore sweeps split a class across
    /// threads without cache-line contention.
    pub fn coloring(&self) -> &Coloring {
        self.coloring.get_or_init(|| self.build_coloring())
    }

    fn build_coloring(&self) -> Coloring {
        let n = self.num_vars();
        let mut color = vec![0u32; n];
        // mark[c] == k means a neighbor of k already uses color c.
        let mut mark = vec![u32::MAX; 1];
        for k in 0..n {
            let (cols, _) = self.row(k);
            for &j in cols {
                let j = j as usize;
                if j < k {
                    let c = color[j] as usize;
                    if c >= mark.len() {
                        mark.resize(c + 1, u32::MAX);
                    }
                    mark[c] = k as u32;
                }
            }
            let mut c = 0;
            while c < mark.len() && mark[c] == k as u32 {
                c += 1;
            }
            if c >= mark.len() {
                mark.resize(c + 1, u32::MAX);
            }
            color[k] = c as u32;
        }
        let num_colors = color.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        // Bucket spins by color; ascending spin order within each class.
        let mut counts = vec![0u32; num_colors + 1];
        for &c in &color {
            counts[c as usize + 1] += 1;
        }
        for c in 1..counts.len() {
            counts[c] += counts[c - 1];
        }
        let class_ptr = counts.clone();
        let mut order = vec![0u32; n];
        let mut cursor = counts;
        for (k, &c) in color.iter().enumerate() {
            order[cursor[c as usize] as usize] = k as u32;
            cursor[c as usize] += 1;
        }
        Coloring {
            class_ptr,
            order,
            num_colors,
        }
    }
}

/// Greedy coloring of a coupling graph: a partition of the spins into
/// independent sets ("color classes") covering every spin exactly once.
#[derive(Debug, Clone, Default)]
pub struct Coloring {
    /// Class `c` spins live at `order[class_ptr[c]..class_ptr[c+1]]`.
    class_ptr: Vec<u32>,
    /// Spin indices grouped by class, ascending within each class.
    order: Vec<u32>,
    num_colors: usize,
}

impl Coloring {
    /// Number of color classes.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Total number of spins covered (sum of class sizes).
    #[inline]
    pub fn num_spins(&self) -> usize {
        self.order.len()
    }

    /// Spin indices of class `c`, ascending.
    #[inline]
    pub fn class(&self, c: usize) -> &[u32] {
        let lo = self.class_ptr[c] as usize;
        let hi = self.class_ptr[c + 1] as usize;
        &self.order[lo..hi]
    }

    /// Iterator over the classes, in color order.
    pub fn classes(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_colors).map(move |c| self.class(c))
    }

    /// All spin indices in sweep order — the concatenation of the classes.
    ///
    /// Visiting this flat slice is the same proposal sequence as nesting
    /// over [`classes`](Self::classes), without the per-class loop overhead
    /// (a complete graph degenerates to `n` singleton classes).
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }
}

/// Bit-packed ±1 spins: 64 spins per `u64` word, bit set ⇔ spin `+1`.
///
/// Readout and flip are branchless bit operations, and 64-spin words make
/// whole-state copies (PIMC Trotter slices, warm starts) 8× smaller than
/// `Vec<i8>` — the Fast kernel's working-set advantage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSpins {
    words: Vec<u64>,
    len: usize,
}

impl BitSpins {
    /// Packs a ±1 spin slice. Any value `>= 0` packs as up (`+1`).
    pub fn from_spins(spins: &[i8]) -> Self {
        let len = spins.len();
        let mut words = vec![0u64; len.div_ceil(64)];
        for (k, &s) in spins.iter().enumerate() {
            if s >= 0 {
                words[k >> 6] |= 1u64 << (k & 63);
            }
        }
        BitSpins { words, len }
    }

    /// All-down (`-1`) state of `len` spins.
    pub fn all_down(len: usize) -> Self {
        BitSpins {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of spins.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no spins.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Spin `k` as ±1. Branchless.
    #[inline]
    pub fn get(&self, k: usize) -> i8 {
        debug_assert!(k < self.len);
        let bit = (self.words[k >> 6] >> (k & 63)) & 1;
        (2 * bit as i8) - 1
    }

    /// Spin `k` as ±1.0f32. Branchless.
    #[inline]
    pub fn sign_f32(&self, k: usize) -> f32 {
        debug_assert!(k < self.len);
        let bit = (self.words[k >> 6] >> (k & 63)) & 1;
        (2 * bit as i32 - 1) as f32
    }

    /// `s_k · x`: applies spin `k`'s sign to `x` by XORing the IEEE sign
    /// bit — no int→float convert, no multiply. Branchless.
    #[inline]
    pub fn apply_sign_f32(&self, k: usize, x: f32) -> f32 {
        debug_assert!(k < self.len);
        let bit = (self.words[k >> 6] >> (k & 63)) & 1;
        f32::from_bits(x.to_bits() ^ (((bit ^ 1) as u32) << 31))
    }

    /// Flips spin `k`.
    #[inline]
    pub fn flip(&mut self, k: usize) {
        debug_assert!(k < self.len);
        self.words[k >> 6] ^= 1u64 << (k & 63);
    }

    /// Unpacks to the `Vec<i8>` ±1 representation.
    pub fn to_spins(&self) -> Vec<i8> {
        (0..self.len).map(|k| self.get(k)).collect()
    }

    /// Raw packed words (trailing bits beyond `len` are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Spins plus incrementally-maintained local fields and tracked energy.
///
/// The invariant after every operation: for all `k`,
/// `h_eff[k] == csr.local_field(spins, k)` (up to float accumulation) and
/// `energy == csr.energy(spins)`.
#[derive(Debug, Clone)]
pub struct LocalFieldState {
    spins: Vec<i8>,
    h_eff: Vec<f64>,
    energy: f64,
}

impl LocalFieldState {
    /// Builds the caches for an initial assignment. O(n + edges).
    ///
    /// # Panics
    /// Panics when `spins.len() != csr.num_vars()`.
    pub fn new(csr: &CsrIsing, spins: Vec<i8>) -> Self {
        assert_eq!(spins.len(), csr.num_vars(), "LocalFieldState: length");
        debug_assert!(spins.iter().all(|&s| s == 1 || s == -1));
        let mut h_eff = vec![0.0; spins.len()];
        csr.fill_local_fields(&spins, &mut h_eff);
        let energy = csr.energy(&spins);
        LocalFieldState {
            spins,
            h_eff,
            energy,
        }
    }

    /// Current spins.
    #[inline]
    pub fn spins(&self) -> &[i8] {
        &self.spins
    }

    /// Consumes the state, returning the spins.
    #[inline]
    pub fn into_spins(self) -> Vec<i8> {
        self.spins
    }

    /// Tracked Ising energy of the current spins.
    #[inline]
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Cached local field of spin `k`.
    #[inline]
    pub fn h_eff(&self, k: usize) -> f64 {
        self.h_eff[k]
    }

    /// Energy change from flipping spin `k`. **O(1)**.
    #[inline]
    pub fn flip_delta(&self, k: usize) -> f64 {
        -2.0 * self.spins[k] as f64 * self.h_eff[k]
    }

    /// Flips spin `k`, updating neighbors' cached fields and the tracked
    /// energy. O(degree of `k`).
    ///
    /// The neighbor update walks contiguous-column runs
    /// ([`CsrIsing::axpy_row`]) — bit-identical to the historical `col_idx`
    /// gather, but vectorizable on dense rows.
    #[inline]
    pub fn flip(&mut self, csr: &CsrIsing, k: usize) {
        let delta = self.flip_delta(k);
        self.flip_with_delta(csr, k, delta);
    }

    /// [`Self::flip`] with a precomputed `flip_delta(k)` — lets sweep loops
    /// reuse the proposal's ΔE instead of recomputing it. Passing anything
    /// other than the current `flip_delta(k)` corrupts the tracked energy.
    #[inline]
    pub fn flip_with_delta(&mut self, csr: &CsrIsing, k: usize, delta: f64) {
        debug_assert_eq!(delta.to_bits(), self.flip_delta(k).to_bits());
        self.energy += delta;
        let s_new = -self.spins[k];
        self.spins[k] = s_new;
        let delta_s = 2.0 * s_new as f64; // s_new − s_old
        csr.axpy_row(&mut self.h_eff, k, delta_s);
    }

    /// Rebuilds the caches from scratch (float-drift reset; also used by the
    /// consistency property tests).
    pub fn refresh(&mut self, csr: &CsrIsing) {
        csr.fill_local_fields(&self.spins, &mut self.h_eff);
        self.energy = csr.energy(&self.spins);
    }

    /// Largest absolute deviation between the cached fields and a
    /// from-scratch recompute (diagnostic; drives the property tests).
    pub fn max_field_error(&self, csr: &CsrIsing) -> f64 {
        (0..self.spins.len())
            .map(|k| (self.h_eff[k] - csr.local_field(&self.spins, k)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_qubo;
    use hqw_math::Rng64;

    fn random_state(n: usize, rng: &mut Rng64) -> Vec<i8> {
        (0..n)
            .map(|_| if rng.next_bool() { 1 } else { -1 })
            .collect()
    }

    #[test]
    fn csr_matches_adjacency_model() {
        let mut rng = Rng64::new(101);
        let q = random_qubo(14, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        assert_eq!(csr.num_vars(), ising.num_vars());
        let spins = random_state(14, &mut rng);
        assert!((csr.energy(&spins) - ising.energy(&spins)).abs() < 1e-9);
        for k in 0..14 {
            assert_eq!(csr.degree(k), ising.degree(k));
            assert!((csr.local_field(&spins, k) - ising.local_field(&spins, k)).abs() < 1e-12);
            assert!((csr.flip_delta(&spins, k) - ising.flip_delta(&spins, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_fields_track_flips() {
        let mut rng = Rng64::new(103);
        let q = random_qubo(12, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let mut state = LocalFieldState::new(&csr, random_state(12, &mut rng));
        for _ in 0..500 {
            let k = rng.next_index(12);
            let expected = csr.flip_delta(state.spins(), k);
            assert!((state.flip_delta(k) - expected).abs() < 1e-9);
            state.flip(&csr, k);
        }
        assert!(state.max_field_error(&csr) < 1e-9);
        assert!((state.energy() - csr.energy(state.spins())).abs() < 1e-9);
    }

    #[test]
    fn refresh_resets_drift() {
        let mut rng = Rng64::new(107);
        let q = random_qubo(10, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let mut state = LocalFieldState::new(&csr, random_state(10, &mut rng));
        for _ in 0..100 {
            let k = rng.next_index(10);
            state.flip(&csr, k);
        }
        state.refresh(&csr);
        assert_eq!(state.max_field_error(&csr), 0.0);
    }

    #[test]
    fn empty_problem_is_fine() {
        let csr = CsrIsing::from_ising(&Ising::new(0));
        assert_eq!(csr.num_vars(), 0);
        assert_eq!(csr.energy(&[]), 0.0);
        assert_eq!(csr.num_runs(), 0);
        assert_eq!(csr.coloring().num_colors(), 0);
        let state = LocalFieldState::new(&csr, Vec::new());
        assert_eq!(state.energy(), 0.0);
    }

    #[test]
    fn dense_rows_compress_to_two_runs() {
        let mut rng = Rng64::new(109);
        let q = crate::generator::sparse_random_qubo(32, 1.0, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        // A dense row's neighbors are [0..k) ∪ (k..n): ≤ 2 runs per row.
        assert!(
            csr.num_runs() <= 2 * csr.num_vars(),
            "dense rows should run-compress ({} runs, {} nnz)",
            csr.num_runs(),
            csr.nnz()
        );
        assert!(csr.num_runs() < csr.nnz() / 4, "runs should beat gather");
    }

    #[test]
    fn axpy_row_matches_gather_bitwise() {
        let mut rng = Rng64::new(113);
        for density in [0.15, 0.6, 1.0] {
            let q = crate::generator::sparse_random_qubo(20, density, &mut rng);
            let (ising, _) = q.to_ising();
            let csr = CsrIsing::from_ising(&ising);
            let mut via_runs = vec![0.25f64; 20];
            let mut via_gather = via_runs.clone();
            for k in 0..20 {
                let ds = if k % 2 == 0 { 2.0 } else { -2.0 };
                csr.axpy_row(&mut via_runs, k, ds);
                let (cols, ws) = csr.row(k);
                for (&j, &w) in cols.iter().zip(ws) {
                    via_gather[j as usize] += w * ds;
                }
            }
            let runs_bits: Vec<u64> = via_runs.iter().map(|f| f.to_bits()).collect();
            let gather_bits: Vec<u64> = via_gather.iter().map(|f| f.to_bits()).collect();
            assert_eq!(runs_bits, gather_bits, "density {density}");
        }
    }

    #[test]
    fn coloring_is_a_proper_partition() {
        let mut rng = Rng64::new(127);
        for density in [0.1, 0.5, 1.0] {
            let q = crate::generator::sparse_random_qubo(24, density, &mut rng);
            let (ising, _) = q.to_ising();
            let csr = CsrIsing::from_ising(&ising);
            let coloring = csr.coloring();
            // Every spin appears exactly once across all classes.
            let mut seen = [false; 24];
            for class in coloring.classes() {
                for &k in class {
                    assert!(!seen[k as usize], "spin {k} colored twice");
                    seen[k as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
            assert_eq!(coloring.num_spins(), 24);
            // No two spins in one class are coupled.
            for class in coloring.classes() {
                for &a in class {
                    let (cols, _) = csr.row(a as usize);
                    for &b in class {
                        assert!(
                            a == b || !cols.contains(&b),
                            "coupled spins {a},{b} share a color (density {density})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bitspins_round_trip_and_flip() {
        let mut rng = Rng64::new(131);
        for n in [0usize, 1, 63, 64, 65, 130] {
            let spins: Vec<i8> = (0..n)
                .map(|_| if rng.next_bool() { 1 } else { -1 })
                .collect();
            let mut packed = BitSpins::from_spins(&spins);
            assert_eq!(packed.len(), n);
            assert_eq!(packed.to_spins(), spins);
            for k in 0..n {
                assert_eq!(packed.get(k), spins[k]);
                assert_eq!(packed.sign_f32(k), spins[k] as f32);
            }
            for k in 0..n {
                packed.flip(k);
                assert_eq!(packed.get(k), -spins[k]);
                packed.flip(k);
            }
            assert_eq!(packed.to_spins(), spins);
        }
        assert_eq!(BitSpins::all_down(70).to_spins(), vec![-1i8; 70]);
    }
}
