//! Flat (CSR) Ising representation and incrementally-maintained local
//! fields — the shared substrate of every Monte-Carlo sweep kernel.
//!
//! [`crate::Ising`] stores its adjacency as `Vec<Vec<(usize, f64)>>`, which
//! is convenient to build but pointer-chases on every neighbor visit.
//! [`CsrIsing`] flattens the mirrored adjacency into three contiguous arrays
//! (`row_ptr` / `col_idx` / `weight`), and [`LocalFieldState`] keeps the
//! effective local field `h_eff[k] = h_k + Σ_j J_kj s_j` cached per spin so
//! a single-flip proposal costs **O(1)** instead of O(degree):
//!
//! * proposal:  `ΔE = −2 s_k h_eff[k]` — two multiplies, no memory walk;
//! * accepted flip: update the caches of `k`'s neighbors — O(degree), but
//!   only on *accepted* moves.
//!
//! A full Metropolis sweep therefore costs `O(n + accepted·deg)` rather than
//! `O(n·deg)`, which is the difference between toy 12-spin tests and the
//! large-MIMO instances the roadmap targets. The tracked energy makes
//! per-read energy reporting free as well.

use crate::ising::Ising;

/// A compressed-sparse-row view of an Ising problem.
///
/// Rows mirror both endpoints of every edge (like `Ising`'s adjacency), so
/// `row(k)` enumerates every neighbor of `k` exactly once.
#[derive(Debug, Clone, Default)]
pub struct CsrIsing {
    h: Vec<f64>,
    /// Neighbors of `i` live at `row_ptr[i]..row_ptr[i+1]`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    weight: Vec<f64>,
}

impl CsrIsing {
    /// Flattens an adjacency-list Ising model. O(n + edges).
    pub fn from_ising(ising: &Ising) -> Self {
        let n = ising.num_vars();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut weight = Vec::new();
        row_ptr.push(0u32);
        for i in 0..n {
            for &(j, w) in ising.neighbors(i) {
                col_idx.push(j as u32);
                weight.push(w);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrIsing {
            h: ising.h_slice().to_vec(),
            row_ptr,
            col_idx,
            weight,
        }
    }

    /// Number of spins.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.h.len()
    }

    /// Linear field `h_k`.
    #[inline]
    pub fn h(&self, k: usize) -> f64 {
        self.h[k]
    }

    /// All linear fields.
    #[inline]
    pub fn h_slice(&self) -> &[f64] {
        &self.h
    }

    /// Number of stored (mirrored) neighbor entries — `2 × edges`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Degree of spin `k`.
    #[inline]
    pub fn degree(&self, k: usize) -> usize {
        (self.row_ptr[k + 1] - self.row_ptr[k]) as usize
    }

    /// Neighbor columns and weights of spin `k` as parallel slices.
    #[inline]
    pub fn row(&self, k: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[k] as usize;
        let hi = self.row_ptr[k + 1] as usize;
        (&self.col_idx[lo..hi], &self.weight[lo..hi])
    }

    /// Local field `h_k + Σ_j J_kj s_j` recomputed from scratch. O(degree).
    #[inline]
    pub fn local_field(&self, spins: &[i8], k: usize) -> f64 {
        debug_assert_eq!(spins.len(), self.num_vars());
        let (cols, ws) = self.row(k);
        let mut f = self.h[k];
        for (&j, &w) in cols.iter().zip(ws) {
            f += w * spins[j as usize] as f64;
        }
        f
    }

    /// Energy change from flipping spin `k` (from-scratch; prefer
    /// [`LocalFieldState::flip_delta`] in sweep loops).
    #[inline]
    pub fn flip_delta(&self, spins: &[i8], k: usize) -> f64 {
        -2.0 * spins[k] as f64 * self.local_field(spins, k)
    }

    /// Ising energy of a ±1 assignment, counting each edge once.
    pub fn energy(&self, spins: &[i8]) -> f64 {
        assert_eq!(spins.len(), self.num_vars(), "CsrIsing::energy: length");
        let mut e = 0.0;
        for k in 0..self.num_vars() {
            let sk = spins[k] as f64;
            e += self.h[k] * sk;
            let (cols, ws) = self.row(k);
            for (&j, &w) in cols.iter().zip(ws) {
                // Each edge is mirrored; count it from its lower endpoint.
                if (j as usize) > k {
                    e += w * sk * spins[j as usize] as f64;
                }
            }
        }
        e
    }

    /// Fills `out[k] = h_k + Σ_j J_kj s_j` for every spin. O(n + edges).
    ///
    /// `spins` may be any slice of ±1 values of length `num_vars()` — engines
    /// use this to (re)build per-replica caches.
    pub fn fill_local_fields(&self, spins: &[i8], out: &mut [f64]) {
        assert_eq!(spins.len(), self.num_vars());
        assert_eq!(out.len(), self.num_vars());
        for k in 0..self.num_vars() {
            let (cols, ws) = self.row(k);
            let mut f = self.h[k];
            for (&j, &w) in cols.iter().zip(ws) {
                f += w * spins[j as usize] as f64;
            }
            out[k] = f;
        }
    }
}

/// Spins plus incrementally-maintained local fields and tracked energy.
///
/// The invariant after every operation: for all `k`,
/// `h_eff[k] == csr.local_field(spins, k)` (up to float accumulation) and
/// `energy == csr.energy(spins)`.
#[derive(Debug, Clone)]
pub struct LocalFieldState {
    spins: Vec<i8>,
    h_eff: Vec<f64>,
    energy: f64,
}

impl LocalFieldState {
    /// Builds the caches for an initial assignment. O(n + edges).
    ///
    /// # Panics
    /// Panics when `spins.len() != csr.num_vars()`.
    pub fn new(csr: &CsrIsing, spins: Vec<i8>) -> Self {
        assert_eq!(spins.len(), csr.num_vars(), "LocalFieldState: length");
        debug_assert!(spins.iter().all(|&s| s == 1 || s == -1));
        let mut h_eff = vec![0.0; spins.len()];
        csr.fill_local_fields(&spins, &mut h_eff);
        let energy = csr.energy(&spins);
        LocalFieldState {
            spins,
            h_eff,
            energy,
        }
    }

    /// Current spins.
    #[inline]
    pub fn spins(&self) -> &[i8] {
        &self.spins
    }

    /// Consumes the state, returning the spins.
    #[inline]
    pub fn into_spins(self) -> Vec<i8> {
        self.spins
    }

    /// Tracked Ising energy of the current spins.
    #[inline]
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Cached local field of spin `k`.
    #[inline]
    pub fn h_eff(&self, k: usize) -> f64 {
        self.h_eff[k]
    }

    /// Energy change from flipping spin `k`. **O(1)**.
    #[inline]
    pub fn flip_delta(&self, k: usize) -> f64 {
        -2.0 * self.spins[k] as f64 * self.h_eff[k]
    }

    /// Flips spin `k`, updating neighbors' cached fields and the tracked
    /// energy. O(degree of `k`).
    #[inline]
    pub fn flip(&mut self, csr: &CsrIsing, k: usize) {
        self.energy += self.flip_delta(k);
        let s_new = -self.spins[k];
        self.spins[k] = s_new;
        let delta_s = 2.0 * s_new as f64; // s_new − s_old
        let (cols, ws) = csr.row(k);
        for (&j, &w) in cols.iter().zip(ws) {
            self.h_eff[j as usize] += w * delta_s;
        }
    }

    /// Rebuilds the caches from scratch (float-drift reset; also used by the
    /// consistency property tests).
    pub fn refresh(&mut self, csr: &CsrIsing) {
        csr.fill_local_fields(&self.spins, &mut self.h_eff);
        self.energy = csr.energy(&self.spins);
    }

    /// Largest absolute deviation between the cached fields and a
    /// from-scratch recompute (diagnostic; drives the property tests).
    pub fn max_field_error(&self, csr: &CsrIsing) -> f64 {
        (0..self.spins.len())
            .map(|k| (self.h_eff[k] - csr.local_field(&self.spins, k)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_qubo;
    use hqw_math::Rng64;

    fn random_state(n: usize, rng: &mut Rng64) -> Vec<i8> {
        (0..n)
            .map(|_| if rng.next_bool() { 1 } else { -1 })
            .collect()
    }

    #[test]
    fn csr_matches_adjacency_model() {
        let mut rng = Rng64::new(101);
        let q = random_qubo(14, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        assert_eq!(csr.num_vars(), ising.num_vars());
        let spins = random_state(14, &mut rng);
        assert!((csr.energy(&spins) - ising.energy(&spins)).abs() < 1e-9);
        for k in 0..14 {
            assert_eq!(csr.degree(k), ising.degree(k));
            assert!((csr.local_field(&spins, k) - ising.local_field(&spins, k)).abs() < 1e-12);
            assert!((csr.flip_delta(&spins, k) - ising.flip_delta(&spins, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_fields_track_flips() {
        let mut rng = Rng64::new(103);
        let q = random_qubo(12, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let mut state = LocalFieldState::new(&csr, random_state(12, &mut rng));
        for _ in 0..500 {
            let k = rng.next_index(12);
            let expected = csr.flip_delta(state.spins(), k);
            assert!((state.flip_delta(k) - expected).abs() < 1e-9);
            state.flip(&csr, k);
        }
        assert!(state.max_field_error(&csr) < 1e-9);
        assert!((state.energy() - csr.energy(state.spins())).abs() < 1e-9);
    }

    #[test]
    fn refresh_resets_drift() {
        let mut rng = Rng64::new(107);
        let q = random_qubo(10, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let mut state = LocalFieldState::new(&csr, random_state(10, &mut rng));
        for _ in 0..100 {
            let k = rng.next_index(10);
            state.flip(&csr, k);
        }
        state.refresh(&csr);
        assert_eq!(state.max_field_error(&csr), 0.0);
    }

    #[test]
    fn empty_problem_is_fine() {
        let csr = CsrIsing::from_ising(&Ising::new(0));
        assert_eq!(csr.num_vars(), 0);
        assert_eq!(csr.energy(&[]), 0.0);
        let state = LocalFieldState::new(&csr, Vec::new());
        assert_eq!(state.energy(), 0.0);
    }
}
