//! Greedy Search (GS) — the paper's classical module (§4.1).
//!
//! > "Initially, GS solves the QUBO with a candidate solution determined by
//! > greedy descent. The bits are sorted in ascending order by the magnitude
//! > of |½Q_ii + ¼Σ_{k<i} Q_ki + ¼Σ_{k>i} Q_ik|. The first bit is assigned
//! > q_i = 0 if the corresponding magnitude is positive and 1 otherwise.
//! > Then the procedure is iterated recursively on the remaining variables
//! > by assigning the value that minimizes the energy of the QUBO form
//! > considering only the variables that are set."
//!
//! The sort key is exactly the Ising linear field `h_i` (the paper's own
//! footnote: "sorted by the absolute magnitude of matrix's diagonal elements
//! in the Ising model"). Two ambiguities in the prose are exposed as options:
//!
//! * [`GreedyOrder`] — the text says *ascending*, but the cited greedy
//!   descent (Venturelli & Kondratyev 2018) fixes the **largest**-magnitude
//!   field first, which is also the variant that behaves like a descent.
//!   Default: [`GreedyOrder::Descending`]; both are implemented and ablated.
//! * [`GreedyVariant`] — `StaticOrder` fixes the order once from the bare
//!   `h_i` (the literal reading); `Dynamic` re-selects the unset variable
//!   with the strongest *effective* field (bare field plus couplings to
//!   already-set spins) at every step. Default: `Dynamic`, matching
//!   "iterated recursively … considering only the variables that are set".
//!
//! Complexity: `O(n²)` for dense problems in either variant — "nearly
//! negligible computation time" as the paper requires of its classical stage.

use crate::ising::Ising;
use crate::model::Qubo;
use crate::solution::spins_to_bits;

/// Which end of the |field| ordering is assigned first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyOrder {
    /// Strongest field first (greedy descent; default).
    #[default]
    Descending,
    /// Weakest field first (the paper's literal prose).
    Ascending,
}

/// Whether the assignment order adapts to already-set variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyVariant {
    /// Re-select the unset variable with the strongest effective field at
    /// every step (default).
    #[default]
    Dynamic,
    /// Fix the order once from the bare Ising fields.
    StaticOrder,
}

/// Configuration for [`greedy_search`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyConfig {
    /// Ordering direction.
    pub order: GreedyOrder,
    /// Static or dynamic ordering.
    pub variant: GreedyVariant,
}

/// Runs Greedy Search on a QUBO, returning `(bits, energy)`.
///
/// Deterministic: ties in field magnitude are broken by variable index, and
/// a zero effective field assigns `q = 1` (spin up), matching the paper's
/// "0 if the corresponding \[field\] is positive and 1 otherwise".
pub fn greedy_search(qubo: &Qubo, config: GreedyConfig) -> (Vec<u8>, f64) {
    let (ising, _offset) = qubo.to_ising();
    let spins = greedy_search_ising(&ising, config);
    let bits = spins_to_bits(&spins);
    let energy = qubo.energy(&bits);
    (bits, energy)
}

/// Greedy Search directly on an Ising model, returning spins.
pub fn greedy_search_ising(ising: &Ising, config: GreedyConfig) -> Vec<i8> {
    let n = ising.num_vars();
    let mut spins: Vec<i8> = vec![0; n]; // 0 = unset
                                         // Effective field of each unset variable, updated as spins are fixed.
    let mut field: Vec<f64> = (0..n).map(|i| ising.h(i)).collect();
    let mut set_count = 0usize;

    // For the static variant, precompute the visit order from bare fields.
    let static_order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            let (fa, fb) = (field[a].abs(), field[b].abs());
            let cmp = fa.partial_cmp(&fb).expect("greedy: NaN field");
            match config.order {
                GreedyOrder::Descending => cmp.reverse().then(a.cmp(&b)),
                GreedyOrder::Ascending => cmp.then(a.cmp(&b)),
            }
        });
        idx
    };
    let mut static_cursor = 0usize;

    while set_count < n {
        let k = match config.variant {
            GreedyVariant::StaticOrder => {
                let k = static_order[static_cursor];
                static_cursor += 1;
                k
            }
            GreedyVariant::Dynamic => {
                // Pick the unset variable with the extremal |effective field|.
                let mut best = usize::MAX;
                let mut best_mag = match config.order {
                    GreedyOrder::Descending => f64::NEG_INFINITY,
                    GreedyOrder::Ascending => f64::INFINITY,
                };
                for i in 0..n {
                    if spins[i] != 0 {
                        continue;
                    }
                    let mag = field[i].abs();
                    let better = match config.order {
                        GreedyOrder::Descending => mag > best_mag,
                        GreedyOrder::Ascending => mag < best_mag,
                    };
                    if better || best == usize::MAX {
                        best = i;
                        best_mag = mag;
                    }
                }
                best
            }
        };

        // Assign the value minimizing the energy contribution f_k · s_k:
        // s_k = −sign(f_k), with the zero-field tie going to +1 (q = 1).
        let s = if field[k] > 0.0 { -1i8 } else { 1i8 };
        spins[k] = s;
        set_count += 1;

        // Fold the fixed spin into its neighbors' effective fields.
        for &(j, jij) in ising.neighbors(k) {
            if spins[j] == 0 {
                field[j] += jij * s as f64;
            }
        }
    }
    spins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::random_qubo;
    use hqw_math::Rng64;

    #[test]
    fn solves_separable_problem_exactly() {
        // E = −q0 + 2 q1 − 3 q2: optimum is q = (1, 0, 1), E = −4.
        let mut q = Qubo::new(3);
        q.set(0, 0, -1.0);
        q.set(1, 1, 2.0);
        q.set(2, 2, -3.0);
        let (bits, e) = greedy_search(&q, GreedyConfig::default());
        assert_eq!(bits, vec![1, 0, 1]);
        assert_eq!(e, -4.0);
    }

    #[test]
    fn respects_couplings_once_first_bit_fixed() {
        // Strong diagonal on q0 forces q0 = 1 first; then the coupling
        // +10·q0·q1 makes q1 = 0 optimal despite its negative diagonal.
        let mut q = Qubo::new(2);
        q.set(0, 0, -8.0);
        q.set(1, 1, -1.0);
        q.set(0, 1, 10.0);
        let (bits, e) = greedy_search(&q, GreedyConfig::default());
        assert_eq!(bits, vec![1, 0]);
        assert_eq!(e, -8.0);
    }

    #[test]
    fn zero_field_assigns_one() {
        let q = Qubo::new(2); // all-zero problem: every field is 0
        let (bits, _) = greedy_search(&q, GreedyConfig::default());
        assert_eq!(bits, vec![1, 1]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut rng = Rng64::new(99);
        let q = random_qubo(12, &mut rng);
        let a = greedy_search(&q, GreedyConfig::default());
        let b = greedy_search(&q, GreedyConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn energy_matches_reported_bits() {
        let mut rng = Rng64::new(7);
        for _ in 0..10 {
            let q = random_qubo(10, &mut rng);
            for order in [GreedyOrder::Descending, GreedyOrder::Ascending] {
                for variant in [GreedyVariant::Dynamic, GreedyVariant::StaticOrder] {
                    let (bits, e) = greedy_search(&q, GreedyConfig { order, variant });
                    assert!((q.energy(&bits) - e).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn greedy_is_no_worse_than_median_random_state() {
        // GS should comfortably beat the average random assignment. This is a
        // statistical sanity check on 16-variable random QUBOs.
        let mut rng = Rng64::new(21);
        let mut wins = 0;
        let trials = 20;
        for _ in 0..trials {
            let q = random_qubo(16, &mut rng);
            let (_, e_greedy) = greedy_search(&q, GreedyConfig::default());
            let mut rand_mean = 0.0;
            let reads = 64;
            for _ in 0..reads {
                let bits: Vec<u8> = (0..16).map(|_| rng.next_bool() as u8).collect();
                rand_mean += q.energy(&bits);
            }
            rand_mean /= reads as f64;
            if e_greedy <= rand_mean {
                wins += 1;
            }
        }
        assert!(
            wins >= trials - 1,
            "greedy lost to random mean too often: {wins}/{trials}"
        );
    }

    #[test]
    fn dynamic_descending_finds_optimum_on_small_instances_often() {
        // On 8-variable random problems, dynamic/descending GS should find
        // the exact optimum for a clear majority of instances ("a good
        // initial guess", per the paper, though "often not the global
        // optimum").
        let mut rng = Rng64::new(3);
        let mut hits = 0;
        let trials = 30;
        for _ in 0..trials {
            let q = random_qubo(8, &mut rng);
            let (_, e_greedy) = greedy_search(&q, GreedyConfig::default());
            let (_, e_best) = exhaustive_minimum(&q);
            if (e_greedy - e_best).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(
            hits * 2 > trials,
            "greedy optimum rate too low: {hits}/{trials}"
        );
    }
}
