//! Parallel tempering (replica exchange) over QUBO problems.
//!
//! Parallel tempering runs several Metropolis chains at different inverse
//! temperatures and periodically proposes swapping the configurations of
//! neighbouring chains. Hot replicas roam the landscape; cold replicas
//! refine; exchanges let a configuration discovered while hot be polished
//! while cold. It is among the strongest general-purpose classical Ising
//! heuristics and serves here as an honest classical baseline for the
//! hybrid fabric's solver pool.
//!
//! The chains run on the flat [`CsrIsing`] representation with
//! incrementally-maintained local fields ([`LocalFieldState`]), the same
//! substrate as the SA kernels: O(1) proposals, O(degree) on accepted
//! flips. All randomness flows from one seeded [`Rng64`] consumed in a
//! fixed serial order (replica sweeps in ladder order, then swap
//! proposals), so a run is a pure function of `(problem, params, seed)` —
//! bit-identical across machines and thread counts.

use crate::csr::{CsrIsing, LocalFieldState};
use crate::model::Qubo;
use crate::solution::spins_to_bits;
use hqw_math::Rng64;

/// Parallel-tempering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtParams {
    /// Number of replicas (temperature rungs).
    pub replicas: usize,
    /// Full Metropolis sweeps per replica.
    pub sweeps: usize,
    /// Propose neighbour swaps every this many sweeps.
    pub swap_interval: usize,
    /// Hottest inverse temperature (smallest β).
    pub beta_min: f64,
    /// Coldest inverse temperature (largest β).
    pub beta_max: f64,
}

impl Default for PtParams {
    fn default() -> Self {
        PtParams {
            replicas: 8,
            sweeps: 128,
            swap_interval: 4,
            beta_min: 0.1,
            beta_max: 10.0,
        }
    }
}

impl PtParams {
    /// Validates parameter ranges.
    ///
    /// # Errors
    /// Returns a message for the first violated constraint: zero replicas,
    /// sweeps or swap interval, or a non-positive / non-finite / inverted
    /// β range.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 {
            return Err("PtParams: need >= 1 replica".to_string());
        }
        if self.sweeps == 0 {
            return Err("PtParams: sweeps must be > 0".to_string());
        }
        if self.swap_interval == 0 {
            return Err("PtParams: swap_interval must be > 0".to_string());
        }
        if !(self.beta_min > 0.0 && self.beta_min.is_finite()) {
            return Err("PtParams: beta_min must be > 0".to_string());
        }
        if !(self.beta_max >= self.beta_min && self.beta_max.is_finite()) {
            return Err("PtParams: beta_max must be >= beta_min".to_string());
        }
        Ok(())
    }
}

/// Geometric β ladder: rung `r` of `n` runs at
/// `beta_min · (beta_max/beta_min)^(r/(n−1))`; a single rung runs cold.
fn beta_ladder(params: &PtParams) -> Vec<f64> {
    let n = params.replicas;
    if n == 1 {
        return vec![params.beta_max];
    }
    let ratio = (params.beta_max / params.beta_min).powf(1.0 / (n - 1) as f64);
    let mut beta = params.beta_min;
    (0..n)
        .map(|_| {
            let b = beta;
            beta *= ratio;
            b
        })
        .collect()
}

/// Runs parallel tempering from random starts, returning
/// `(best bits, best QUBO energy)`.
///
/// Deterministic for a fixed `(qubo, params, seed)` triple. The returned
/// energy is re-evaluated from the bits, so it matches
/// [`Qubo::energy`] exactly.
///
/// # Panics
/// Panics on invalid parameters.
pub fn parallel_tempering(qubo: &Qubo, params: &PtParams, seed: u64) -> (Vec<u8>, f64) {
    if let Err(e) = params.validate() {
        panic!("{e}");
    }
    let n = qubo.num_vars();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let (ising, _offset) = qubo.to_ising();
    let csr = CsrIsing::from_ising(&ising);
    let betas = beta_ladder(params);
    let mut rng = Rng64::new(seed);

    // Random start per replica, drawn hottest-first so the stream layout is
    // stable under ladder-size changes only at the tail.
    let mut states: Vec<LocalFieldState> = (0..params.replicas)
        .map(|_| {
            let spins: Vec<i8> = (0..n)
                .map(|_| if rng.next_bool() { 1 } else { -1 })
                .collect();
            LocalFieldState::new(&csr, spins)
        })
        .collect();

    let mut best_spins = states[0].spins().to_vec();
    let mut best_energy = states[0].energy();
    for state in &states[1..] {
        if state.energy() < best_energy {
            best_energy = state.energy();
            best_spins.copy_from_slice(state.spins());
        }
    }

    for sweep in 1..=params.sweeps {
        // Metropolis sweep per replica, ladder order.
        for (state, &beta) in states.iter_mut().zip(&betas) {
            for k in 0..n {
                let delta = state.flip_delta(k);
                if delta <= 0.0 || rng.next_f64() < (-beta * delta).exp() {
                    state.flip_with_delta(&csr, k, delta);
                }
            }
            if state.energy() < best_energy {
                best_energy = state.energy();
                best_spins.copy_from_slice(state.spins());
            }
        }
        // Neighbour exchange: swap configurations when the detailed-balance
        // criterion exp((β_i − β_j)(E_i − E_j)) accepts.
        if sweep % params.swap_interval == 0 {
            for r in 0..params.replicas.saturating_sub(1) {
                let d_beta = betas[r] - betas[r + 1];
                let d_energy = states[r].energy() - states[r + 1].energy();
                let log_accept = d_beta * d_energy;
                if log_accept >= 0.0 || rng.next_f64() < log_accept.exp() {
                    states.swap(r, r + 1);
                }
            }
        }
    }

    let bits = spins_to_bits(&best_spins);
    let energy = qubo.energy(&bits);
    (bits, energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::random_qubo;

    #[test]
    fn finds_optimum_on_small_problems() {
        let mut rng = Rng64::new(61);
        for trial in 0..8 {
            let q = random_qubo(12, &mut rng);
            let (_, e_best) = exhaustive_minimum(&q);
            let (_, e_pt) = parallel_tempering(&q, &PtParams::default(), 900 + trial);
            assert!(
                (e_pt - e_best).abs() < 1e-9,
                "PT missed optimum: {e_pt} vs {e_best}"
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let q = random_qubo(14, &mut Rng64::new(63));
        let a = parallel_tempering(&q, &PtParams::default(), 7);
        let b = parallel_tempering(&q, &PtParams::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_the_stream() {
        // Two seeds must drive different dynamics (the bits may still agree
        // on easy instances, so compare with a hard budget: one replica,
        // one sweep — essentially the random start).
        let q = random_qubo(16, &mut Rng64::new(65));
        let tight = PtParams {
            replicas: 1,
            sweeps: 1,
            ..PtParams::default()
        };
        let a = parallel_tempering(&q, &tight, 1);
        let b = parallel_tempering(&q, &tight, 2);
        assert_ne!(a.0, b.0, "different seeds produced identical bits");
    }

    #[test]
    fn reported_energy_matches_bits() {
        let q = random_qubo(16, &mut Rng64::new(67));
        let (bits, e) = parallel_tempering(&q, &PtParams::default(), 11);
        assert!((q.energy(&bits) - e).abs() < 1e-12);
    }

    #[test]
    fn single_replica_degenerates_to_cold_metropolis() {
        let q = random_qubo(10, &mut Rng64::new(69));
        let params = PtParams {
            replicas: 1,
            ..PtParams::default()
        };
        let (bits, e) = parallel_tempering(&q, &params, 13);
        assert_eq!(bits.len(), 10);
        assert!((q.energy(&bits) - e).abs() < 1e-12);
    }

    #[test]
    fn zero_size_problem_is_fine() {
        let q = Qubo::new(0);
        let (bits, e) = parallel_tempering(&q, &PtParams::default(), 17);
        assert!(bits.is_empty());
        assert_eq!(e, 0.0);
    }

    #[test]
    fn rejects_invalid_params() {
        for bad in [
            PtParams {
                replicas: 0,
                ..PtParams::default()
            },
            PtParams {
                sweeps: 0,
                ..PtParams::default()
            },
            PtParams {
                swap_interval: 0,
                ..PtParams::default()
            },
            PtParams {
                beta_min: 0.0,
                ..PtParams::default()
            },
            PtParams {
                beta_max: 0.05,
                ..PtParams::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
