//! Solver output types: single samples and aggregated sample sets.
//!
//! Annealers return one bitstring per read; the paper's analyses
//! (ΔE% distributions, success probabilities, TTS) operate on the aggregate.
//! [`SampleSet`] deduplicates identical states, tracks occurrence counts and
//! keeps samples sorted by energy so "the best sample" (the paper's final
//! answer selection) is O(1).

use std::collections::HashMap;

/// Converts a 0/1 bitstring to ±1 spins (`s = 2q − 1`).
pub fn bits_to_spins(bits: &[u8]) -> Vec<i8> {
    bits.iter().map(|&b| if b == 1 { 1 } else { -1 }).collect()
}

/// Converts ±1 spins to a 0/1 bitstring (`q = (s + 1) / 2`).
pub fn spins_to_bits(spins: &[i8]) -> Vec<u8> {
    spins.iter().map(|&s| if s > 0 { 1 } else { 0 }).collect()
}

/// One distinct solver state with its energy and multiplicity.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The 0/1 assignment.
    pub bits: Vec<u8>,
    /// QUBO energy of the assignment.
    pub energy: f64,
    /// Number of reads that returned this assignment.
    pub occurrences: u64,
}

/// A collection of solver reads, aggregated by state and sorted by energy.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<Sample>,
    total_reads: u64,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Builds a sample set from raw `(bits, energy)` reads, aggregating
    /// duplicates and sorting ascending by energy.
    pub fn from_reads(reads: impl IntoIterator<Item = (Vec<u8>, f64)>) -> Self {
        let mut agg: HashMap<Vec<u8>, (f64, u64)> = HashMap::new();
        let mut total = 0u64;
        for (bits, energy) in reads {
            total += 1;
            agg.entry(bits)
                .and_modify(|e| e.1 += 1)
                .or_insert((energy, 1));
        }
        let mut samples: Vec<Sample> = agg
            .into_iter()
            .map(|(bits, (energy, occurrences))| Sample {
                bits,
                energy,
                occurrences,
            })
            .collect();
        samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .expect("SampleSet: NaN energy")
                .then_with(|| a.bits.cmp(&b.bits))
        });
        SampleSet {
            samples,
            total_reads: total,
        }
    }

    /// Distinct states, ascending by energy.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of distinct states.
    pub fn num_distinct(&self) -> usize {
        self.samples.len()
    }

    /// Total number of reads aggregated.
    pub fn total_reads(&self) -> u64 {
        self.total_reads
    }

    /// True when no reads were aggregated.
    pub fn is_empty(&self) -> bool {
        self.total_reads == 0
    }

    /// Lowest-energy sample (the solver's answer), if any.
    pub fn best(&self) -> Option<&Sample> {
        self.samples.first()
    }

    /// Lowest observed energy (`+∞` when empty, so comparisons still work).
    pub fn best_energy(&self) -> f64 {
        self.best().map(|s| s.energy).unwrap_or(f64::INFINITY)
    }

    /// Fraction of reads at or below `ground_energy + tol` — the per-read
    /// ground-state probability `p★` of the paper's Eq. 2.
    pub fn ground_probability(&self, ground_energy: f64, tol: f64) -> f64 {
        if self.total_reads == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .samples
            .iter()
            .take_while(|s| s.energy <= ground_energy + tol)
            .map(|s| s.occurrences)
            .sum();
        hits as f64 / self.total_reads as f64
    }

    /// Mean energy over reads (weighted by occurrences; 0 when empty).
    pub fn mean_energy(&self) -> f64 {
        if self.total_reads == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|s| s.energy * s.occurrences as f64)
            .sum();
        sum / self.total_reads as f64
    }

    /// Expands to one energy per read (for percentile analyses).
    pub fn energies_per_read(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total_reads as usize);
        for s in &self.samples {
            for _ in 0..s.occurrences {
                out.push(s.energy);
            }
        }
        out
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &SampleSet) {
        let reads = self
            .samples
            .iter()
            .chain(other.samples.iter())
            .flat_map(|s| std::iter::repeat_n((s.bits.clone(), s.energy), s.occurrences as usize));
        *self = SampleSet::from_reads(reads);
    }
}

impl FromIterator<(Vec<u8>, f64)> for SampleSet {
    fn from_iter<T: IntoIterator<Item = (Vec<u8>, f64)>>(iter: T) -> Self {
        SampleSet::from_reads(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_spins_round_trip() {
        let bits = vec![0u8, 1, 1, 0, 1];
        assert_eq!(spins_to_bits(&bits_to_spins(&bits)), bits);
        assert_eq!(bits_to_spins(&bits), vec![-1, 1, 1, -1, 1]);
    }

    #[test]
    fn aggregation_counts_duplicates() {
        let set = SampleSet::from_reads(vec![
            (vec![0, 1], -2.0),
            (vec![1, 1], 2.0),
            (vec![0, 1], -2.0),
            (vec![0, 0], 0.0),
        ]);
        assert_eq!(set.total_reads(), 4);
        assert_eq!(set.num_distinct(), 3);
        let best = set.best().unwrap();
        assert_eq!(best.bits, vec![0, 1]);
        assert_eq!(best.occurrences, 2);
        assert_eq!(set.best_energy(), -2.0);
    }

    #[test]
    fn ground_probability_counts_hits() {
        let set = SampleSet::from_reads(vec![
            (vec![0, 1], -2.0),
            (vec![0, 1], -2.0),
            (vec![1, 1], 2.0),
            (vec![0, 0], 0.0),
        ]);
        assert!((set.ground_probability(-2.0, 1e-9) - 0.5).abs() < 1e-12);
        assert_eq!(set.ground_probability(-3.0, 1e-9), 0.0);
        // Tolerance sweeps in more states.
        assert!((set.ground_probability(-2.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_energy_weighted_by_occurrences() {
        let set = SampleSet::from_reads(vec![
            (vec![0], 0.0),
            (vec![1], 4.0),
            (vec![1], 4.0),
            (vec![1], 4.0),
        ]);
        assert!((set.mean_energy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energies_per_read_expands() {
        let set = SampleSet::from_reads(vec![(vec![0], 1.0), (vec![0], 1.0), (vec![1], 2.0)]);
        let mut e = set.energies_per_read();
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(e, vec![1.0, 1.0, 2.0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SampleSet::from_reads(vec![(vec![0], 1.0)]);
        let b = SampleSet::from_reads(vec![(vec![0], 1.0), (vec![1], -1.0)]);
        a.merge(&b);
        assert_eq!(a.total_reads(), 3);
        assert_eq!(a.best().unwrap().bits, vec![1]);
        assert_eq!(a.iter().find(|s| s.bits == vec![0]).unwrap().occurrences, 2);
    }

    #[test]
    fn empty_set_defaults() {
        let set = SampleSet::new();
        assert!(set.is_empty());
        assert!(set.best().is_none());
        assert_eq!(set.ground_probability(0.0, 1e-9), 0.0);
        assert_eq!(set.best_energy(), f64::INFINITY);
    }
}
