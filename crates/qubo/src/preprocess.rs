//! QUBO-simplifying preprocessing — the paper's §3.1 "Simplifying the QUBO
//! form" (Figure 3), i.e. the Lewis–Glover variable-fixing rules.
//!
//! A variable whose diagonal term dominates every coupling it participates in
//! has the same optimal value in *every* optimum, so it can be fixed before
//! quantum processing, halving the search space per fixed variable:
//!
//! * If `Q_ii + Σ_k min(0, Q̃_ik) ≥ 0`, the contribution of `q_i = 1` can
//!   never be negative, so some optimum has `q_i = 0` → **fix to 0**.
//! * If `Q_ii + Σ_k max(0, Q̃_ik) ≤ 0`, the contribution of `q_i = 1` can
//!   never be positive, so some optimum has `q_i = 1` → **fix to 1**.
//!
//! (`Q̃` is the symmetric coupling view; the paper's prose states the
//! positive-diagonal direction and cites Lewis & Glover \[34\] for the full
//! scheme.) Rules are applied to a fixpoint: fixing one variable folds its
//! value into its neighbors' diagonals, which can enable further fixing.
//!
//! The paper's empirical finding — reproduced by the `fig3` bench binary —
//! is that MIMO-detection QUBOs stop simplifying at all beyond ~32–40
//! variables, making the scheme unhelpful for 5G-scale problems.

use crate::model::Qubo;

/// Outcome of preprocessing a QUBO.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The reduced problem over the surviving variables (possibly 0-sized).
    pub reduced: Qubo,
    /// For each original variable: `Some(bit)` when fixed, `None` when free.
    pub fixed: Vec<Option<u8>>,
    /// Maps reduced-problem index → original variable index.
    pub reduced_to_original: Vec<usize>,
    /// Constant energy contributed by the fixed variables:
    /// `original.energy(x) = reduced.energy(x_free) + offset` for any
    /// completion consistent with the fixed bits.
    pub offset: f64,
}

impl Preprocessed {
    /// Number of variables that were fixed.
    pub fn num_fixed(&self) -> usize {
        self.fixed.iter().filter(|f| f.is_some()).count()
    }

    /// True when at least one variable was fixed.
    pub fn simplified(&self) -> bool {
        self.num_fixed() > 0
    }

    /// Reconstructs a full assignment from a reduced-problem assignment.
    ///
    /// # Panics
    /// Panics when `reduced_bits` has the wrong length.
    pub fn reconstruct(&self, reduced_bits: &[u8]) -> Vec<u8> {
        assert_eq!(
            reduced_bits.len(),
            self.reduced_to_original.len(),
            "reconstruct: reduced state length mismatch"
        );
        let mut full: Vec<u8> = self.fixed.iter().map(|f| f.unwrap_or(0)).collect();
        for (ri, &oi) in self.reduced_to_original.iter().enumerate() {
            full[oi] = reduced_bits[ri];
        }
        full
    }
}

/// Applies the variable-fixing rules to a fixpoint.
///
/// Runs in `O(passes · n²)` for dense problems; the number of passes is at
/// most the number of variables fixed plus one.
pub fn preprocess(qubo: &Qubo) -> Preprocessed {
    let n = qubo.num_vars();
    // Working copies: effective diagonals absorb fixed neighbors; `state`
    // tracks None = free, Some(bit) = fixed.
    let mut diag: Vec<f64> = (0..n).map(|i| qubo.diagonal(i)).collect();
    let mut state: Vec<Option<u8>> = vec![None; n];
    let mut offset = 0.0;

    loop {
        let mut changed = false;
        for i in 0..n {
            if state[i].is_some() {
                continue;
            }
            let mut neg = 0.0;
            let mut pos = 0.0;
            for j in 0..n {
                if j == i || state[j].is_some() {
                    continue;
                }
                let c = qubo.get(i, j);
                if c < 0.0 {
                    neg += c;
                } else {
                    pos += c;
                }
            }
            if diag[i] + neg >= 0.0 {
                // q_i = 1 can never help: fix to 0. No diagonal updates needed
                // (a zero variable contributes nothing).
                state[i] = Some(0);
                changed = true;
            } else if diag[i] + pos <= 0.0 {
                // q_i = 1 can never hurt: fix to 1. Fold into neighbors.
                state[i] = Some(1);
                offset += diag[i];
                for j in 0..n {
                    if j != i && state[j].is_none() {
                        diag[j] += qubo.get(i, j);
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Build the reduced problem over free variables.
    let reduced_to_original: Vec<usize> = (0..n).filter(|&i| state[i].is_none()).collect();
    let m = reduced_to_original.len();
    let mut reduced = Qubo::new(m);
    for (ri, &oi) in reduced_to_original.iter().enumerate() {
        reduced.set(ri, ri, diag[oi]);
        for (rj, &oj) in reduced_to_original.iter().enumerate().skip(ri + 1) {
            let c = qubo.get(oi, oj);
            if c != 0.0 {
                reduced.set(ri, rj, c);
            }
        }
    }

    Preprocessed {
        reduced,
        fixed: state,
        reduced_to_original,
        offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::{random_qubo, sparse_random_qubo};
    use hqw_math::Rng64;

    #[test]
    fn dominant_positive_diagonal_fixes_to_zero() {
        // Q_00 = 5 with couplings −1, −2: 5 − 3 ≥ 0 → q0 = 0.
        let mut q = Qubo::new(3);
        q.set(0, 0, 5.0);
        q.set(0, 1, -1.0);
        q.set(0, 2, -2.0);
        q.set(1, 1, -1.0);
        q.set(2, 2, -1.0);
        let p = preprocess(&q);
        assert_eq!(p.fixed[0], Some(0));
        assert!(p.simplified());
    }

    #[test]
    fn dominant_negative_diagonal_fixes_to_one() {
        // Q_00 = −5 with couplings +1, +2: −5 + 3 ≤ 0 → q0 = 1.
        let mut q = Qubo::new(3);
        q.set(0, 0, -5.0);
        q.set(0, 1, 1.0);
        q.set(0, 2, 2.0);
        q.set(1, 1, 1.0);
        q.set(2, 2, 1.0);
        let p = preprocess(&q);
        assert_eq!(p.fixed[0], Some(1));
    }

    #[test]
    fn fixing_cascades_to_fixpoint() {
        // Chain: fixing q0=1 shifts q1's diagonal enough to fix it too.
        let mut q = Qubo::new(2);
        q.set(0, 0, -10.0);
        q.set(0, 1, 3.0); // after q0=1, q1's effective diagonal: 0.5+3 = 3.5 ≥ 0 → q1=0
        q.set(1, 1, 0.5); // not fixable on its own? 0.5 + min(0,3)=0.5 ≥ 0 → actually fixable
        let p = preprocess(&q);
        assert_eq!(p.num_fixed(), 2);
        assert_eq!(p.fixed[0], Some(1));
        assert_eq!(p.fixed[1], Some(0));
        assert_eq!(p.reduced.num_vars(), 0);
        // Offset carries the fixed energy.
        assert_eq!(p.offset, -10.0);
    }

    #[test]
    fn balanced_problem_does_not_simplify() {
        // Diagonal 1 with couplings −2: 1 − 2 < 0 and 1 + 0 > 0 → cannot fix.
        let mut q = Qubo::new(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, 1.0);
        q.set(0, 1, -2.0);
        let p = preprocess(&q);
        assert!(!p.simplified());
        assert_eq!(p.reduced.num_vars(), 2);
    }

    #[test]
    fn preprocessing_preserves_the_optimum() {
        let mut rng = Rng64::new(41);
        for n in [4usize, 6, 8, 10, 12] {
            for density in [0.2, 0.6, 1.0] {
                for _ in 0..5 {
                    let q = sparse_random_qubo(n, density, &mut rng);
                    let p = preprocess(&q);
                    let (_, e_original) = exhaustive_minimum(&q);
                    let e_reduced = if p.reduced.num_vars() == 0 {
                        p.offset
                    } else {
                        let (rb, re) = exhaustive_minimum(&p.reduced);
                        // Reconstruction evaluates consistently.
                        let full = p.reconstruct(&rb);
                        assert!((q.energy(&full) - (re + p.offset)).abs() < 1e-9);
                        re + p.offset
                    };
                    assert!(
                        (e_original - e_reduced).abs() < 1e-9,
                        "optimum changed: {e_original} → {e_reduced} (n={n}, density={density})"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_random_problems_rarely_simplify_at_scale() {
        // The paper's Figure-3 cliff: with many balanced couplings, fixing
        // becomes impossible. Verify directionally on dense uniform QUBOs.
        let mut rng = Rng64::new(4242);
        let mut simplified_small = 0;
        let mut simplified_large = 0;
        for _ in 0..20 {
            if preprocess(&random_qubo(4, &mut rng)).simplified() {
                simplified_small += 1;
            }
            if preprocess(&random_qubo(48, &mut rng)).simplified() {
                simplified_large += 1;
            }
        }
        assert!(
            simplified_small > simplified_large,
            "expected small problems to simplify more often ({simplified_small} vs {simplified_large})"
        );
        assert_eq!(
            simplified_large, 0,
            "48-var dense problems should never simplify"
        );
    }

    #[test]
    fn reconstruct_rejects_wrong_length() {
        let q = Qubo::new(3);
        let p = preprocess(&q);
        let free = p.reduced.num_vars();
        let result = std::panic::catch_unwind(|| p.reconstruct(&vec![0u8; free + 1]));
        assert!(result.is_err());
    }
}
