//! # hqw-qubo — QUBO/Ising substrate
//!
//! The paper's entire computational pipeline operates on Quadratic
//! Unconstrained Binary Optimization (QUBO) problems (its Eq. 1):
//!
//! ```text
//!   E({q₁,…,q_N}) = Σ_{i≤j} Q_ij q_i q_j ,   q_i ∈ {0, 1}
//! ```
//!
//! and on the trivially-equivalent Ising form (±1 spins) that annealing
//! hardware natively programs. This crate provides:
//!
//! * [`Qubo`] — dense upper-triangular QUBO with energy evaluation and
//!   incremental single-flip deltas ([`model`]).
//! * [`Ising`] — sparse `h`/`J` Ising model with exact, offset-tracked
//!   conversions to/from QUBO ([`ising`]).
//! * [`CsrIsing`] / [`LocalFieldState`] — the flat (CSR) sweep substrate
//!   with incrementally-maintained local fields: O(1) flip proposals,
//!   O(degree) only on accepted flips ([`csr`]).
//! * [`SampleSet`] — aggregated solver output with occurrence counting
//!   ([`solution`]).
//! * [`preprocess`] — the Lewis–Glover variable-fixing scheme evaluated in
//!   the paper's §3.1 / Figure 3.
//! * [`constraints`] — the soft-information pair-constraint injection of
//!   §3.1 / Figure 4.
//! * Classical solvers: the paper's Greedy Search ([`greedy`], §4.1),
//!   steepest-descent local search ([`local`]), tabu search ([`tabu`]),
//!   simulated annealing ([`sa`]), parallel tempering ([`pt`]) and exact
//!   solvers ([`exact`]) used for ground-truth verification.
//! * [`generator`] — random problem generators for tests and benches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Numeric kernels below index several arrays by one loop variable (often with
// an `i != j` guard); iterator rewrites obscure that symmetry.
#![allow(clippy::needless_range_loop)]

pub mod constraints;
pub mod csr;
pub mod exact;
pub mod generator;
pub mod greedy;
pub mod ising;
pub mod local;
pub mod model;
pub mod preprocess;
pub mod pt;
pub mod sa;
pub mod solution;
pub mod tabu;

pub use csr::{BitSpins, Coloring, CsrIsing, LocalFieldState};
pub use greedy::{greedy_search, GreedyOrder, GreedyVariant};
pub use ising::Ising;
pub use model::Qubo;
pub use pt::{parallel_tempering, PtParams};
pub use sa::SweepKernel;
pub use solution::{bits_to_spins, spins_to_bits, Sample, SampleSet};
pub use tabu::{tabu_from_random, tabu_search, TabuParams};
