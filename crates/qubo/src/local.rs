//! Single-flip local search (steepest descent) and random-restart wrappers.
//!
//! Used (a) as a cheap classical baseline, (b) to post-process annealer
//! samples, and (c) in tests to certify that solver outputs are at least
//! locally optimal.

use crate::model::Qubo;
use hqw_math::Rng64;

/// Descends from `start` by repeatedly applying the single best improving
/// flip until a local minimum is reached. Returns `(bits, energy, steps)`.
///
/// Deterministic: among equally-improving flips, the lowest index wins.
pub fn steepest_descent(qubo: &Qubo, start: &[u8]) -> (Vec<u8>, f64, usize) {
    let n = qubo.num_vars();
    assert_eq!(start.len(), n, "steepest_descent: state length mismatch");
    let mut bits = start.to_vec();
    let mut steps = 0;
    loop {
        let mut best_delta = -1e-12; // strictly improving only
        let mut best_k = None;
        for k in 0..n {
            let d = qubo.flip_delta(&bits, k);
            if d < best_delta {
                best_delta = d;
                best_k = Some(k);
            }
        }
        match best_k {
            Some(k) => {
                bits[k] ^= 1;
                steps += 1;
            }
            None => break,
        }
    }
    let energy = qubo.energy(&bits);
    (bits, energy, steps)
}

/// True when no single flip strictly improves the energy.
pub fn is_local_minimum(qubo: &Qubo, bits: &[u8]) -> bool {
    (0..qubo.num_vars()).all(|k| qubo.flip_delta(bits, k) >= -1e-12)
}

/// Steepest descent from `restarts` uniform random starts; returns the best
/// `(bits, energy)` found.
///
/// # Panics
/// Panics when `restarts == 0`.
pub fn random_restart_descent(qubo: &Qubo, restarts: usize, rng: &mut Rng64) -> (Vec<u8>, f64) {
    assert!(
        restarts > 0,
        "random_restart_descent: need at least one restart"
    );
    let n = qubo.num_vars();
    let mut best_bits = Vec::new();
    let mut best_energy = f64::INFINITY;
    for _ in 0..restarts {
        let start: Vec<u8> = (0..n).map(|_| rng.next_bool() as u8).collect();
        let (bits, energy, _) = steepest_descent(qubo, &start);
        if energy < best_energy {
            best_energy = energy;
            best_bits = bits;
        }
    }
    (best_bits, best_energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::random_qubo;

    #[test]
    fn descends_to_known_optimum() {
        // E = q0 − 2 q1 + 3 q0 q1: optimum (0,1) at −2.
        let mut q = Qubo::new(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, -2.0);
        q.set(0, 1, 3.0);
        let (bits, e, steps) = steepest_descent(&q, &[1, 0]);
        assert_eq!(bits, vec![0, 1]);
        assert_eq!(e, -2.0);
        assert!(steps >= 1);
    }

    #[test]
    fn output_is_always_a_local_minimum() {
        let mut rng = Rng64::new(8);
        for _ in 0..10 {
            let q = random_qubo(14, &mut rng);
            let start: Vec<u8> = (0..14).map(|_| rng.next_bool() as u8).collect();
            let (bits, _, _) = steepest_descent(&q, &start);
            assert!(is_local_minimum(&q, &bits));
        }
    }

    #[test]
    fn descent_never_increases_energy() {
        let mut rng = Rng64::new(9);
        let q = random_qubo(12, &mut rng);
        let start: Vec<u8> = (0..12).map(|_| rng.next_bool() as u8).collect();
        let e0 = q.energy(&start);
        let (_, e1, _) = steepest_descent(&q, &start);
        assert!(e1 <= e0 + 1e-12);
    }

    #[test]
    fn local_minimum_is_fixed_point() {
        let mut rng = Rng64::new(10);
        let q = random_qubo(10, &mut rng);
        let (bits, e, _) = steepest_descent(&q, &[0u8; 10]);
        let (bits2, e2, steps2) = steepest_descent(&q, &bits);
        assert_eq!(bits2, bits);
        assert_eq!(e2, e);
        assert_eq!(steps2, 0);
    }

    #[test]
    fn random_restarts_find_optimum_on_small_problems() {
        let mut rng = Rng64::new(11);
        for _ in 0..5 {
            let q = random_qubo(10, &mut rng);
            let (_, e_best) = exhaustive_minimum(&q);
            let (_, e_rr) = random_restart_descent(&q, 50, &mut rng);
            assert!(
                (e_rr - e_best).abs() < 1e-9,
                "50 restarts should crack a 10-var problem ({e_rr} vs {e_best})"
            );
        }
    }
}
