//! Sparse Ising model: `E(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j`, `s ∈ {−1,+1}ⁿ`.
//!
//! This is the form annealing hardware programs natively. Storage is an
//! adjacency list (each edge mirrored into both endpoints' lists), which is
//! convenient to build and mutate incrementally. Monte-Carlo sweep kernels
//! should not iterate it directly: flatten to [`crate::CsrIsing`] once per
//! problem and sweep with [`crate::LocalFieldState`]'s incrementally-cached
//! local fields (O(1) proposals) instead.

use std::collections::HashMap;

/// A sparse Ising problem over ±1 spins.
#[derive(Clone, Debug, Default)]
pub struct Ising {
    h: Vec<f64>,
    /// Mirrored adjacency: `adj[i]` holds `(j, J_ij)` for every neighbor `j`.
    adj: Vec<Vec<(usize, f64)>>,
    /// Canonical edge list (`i < j`).
    edges: Vec<(usize, usize, f64)>,
    /// Edge lookup: canonical pair → index into `edges`.
    edge_index: HashMap<(usize, usize), usize>,
}

impl Ising {
    /// Creates an Ising model over `n` spins with zero fields and couplings.
    pub fn new(n: usize) -> Self {
        Ising {
            h: vec![0.0; n],
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_index: HashMap::new(),
        }
    }

    /// Number of spins.
    pub fn num_vars(&self) -> usize {
        self.h.len()
    }

    /// Linear field `h_i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[inline]
    pub fn h(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// All linear fields.
    pub fn h_slice(&self) -> &[f64] {
        &self.h
    }

    /// Sets `h_i`.
    pub fn set_h(&mut self, i: usize, value: f64) {
        self.h[i] = value;
    }

    /// Adds to `h_i`.
    pub fn add_h(&mut self, i: usize, value: f64) {
        self.h[i] += value;
    }

    /// Coupling `J_ij` (0 when absent).
    ///
    /// # Panics
    /// Panics when `i == j` or an index is out of range.
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "Ising::coupling: self-coupling is not allowed");
        assert!(i < self.num_vars() && j < self.num_vars());
        let key = (i.min(j), i.max(j));
        self.edge_index
            .get(&key)
            .map(|&idx| self.edges[idx].2)
            .unwrap_or(0.0)
    }

    /// Sets coupling `J_ij`, creating or updating the edge.
    ///
    /// Setting an existing edge to zero keeps the edge with weight zero (the
    /// topology is preserved; useful when perturbing programmed weights).
    ///
    /// # Panics
    /// Panics when `i == j` or an index is out of range.
    pub fn set_coupling(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "Ising::set_coupling: self-coupling is not allowed");
        assert!(i < self.num_vars() && j < self.num_vars());
        let key = (i.min(j), i.max(j));
        if let Some(&idx) = self.edge_index.get(&key) {
            self.edges[idx].2 = value;
            for &(node, other) in &[(i, j), (j, i)] {
                for entry in &mut self.adj[node] {
                    if entry.0 == other {
                        entry.1 = value;
                        break;
                    }
                }
            }
        } else {
            self.edge_index.insert(key, self.edges.len());
            self.edges.push((key.0, key.1, value));
            self.adj[i].push((j, value));
            self.adj[j].push((i, value));
        }
    }

    /// Adds to coupling `J_ij`, creating the edge when absent.
    pub fn add_coupling(&mut self, i: usize, j: usize, value: f64) {
        let current = self.coupling(i, j);
        self.set_coupling(i, j, current + value);
    }

    /// Canonical edge list `(i, j, J_ij)` with `i < j`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Neighbors of spin `i` as `(j, J_ij)` pairs.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64)] {
        &self.adj[i]
    }

    /// Degree of spin `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Evaluates the Ising energy of a ±1 assignment.
    ///
    /// # Panics
    /// Panics when `spins.len() != num_vars()` (debug builds also check each
    /// entry is ±1).
    pub fn energy(&self, spins: &[i8]) -> f64 {
        assert_eq!(
            spins.len(),
            self.num_vars(),
            "Ising::energy: state length mismatch"
        );
        debug_assert!(spins.iter().all(|&s| s == 1 || s == -1), "spins must be ±1");
        let mut e = 0.0;
        for (i, &hi) in self.h.iter().enumerate() {
            e += hi * spins[i] as f64;
        }
        for &(i, j, jij) in &self.edges {
            e += jij * spins[i] as f64 * spins[j] as f64;
        }
        e
    }

    /// Local field at spin `k`: `h_k + Σ_j J_kj s_j`.
    ///
    /// # Panics
    /// Panics when lengths mismatch or `k` is out of range.
    #[inline]
    pub fn local_field(&self, spins: &[i8], k: usize) -> f64 {
        debug_assert_eq!(spins.len(), self.num_vars());
        let mut f = self.h[k];
        for &(j, jij) in &self.adj[k] {
            f += jij * spins[j] as f64;
        }
        f
    }

    /// Energy change from flipping spin `k`: `ΔE = −2 s_k · local_field(k)`.
    #[inline]
    pub fn flip_delta(&self, spins: &[i8], k: usize) -> f64 {
        -2.0 * spins[k] as f64 * self.local_field(spins, k)
    }

    /// Largest absolute linear field (0 when empty).
    pub fn max_abs_h(&self) -> f64 {
        self.h.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Largest absolute coupling (0 when there are no edges).
    pub fn max_abs_j(&self) -> f64 {
        self.edges.iter().map(|e| e.2.abs()).fold(0.0, f64::max)
    }

    /// Uniformly rescales all fields and couplings.
    pub fn scale(&mut self, k: f64) {
        for h in &mut self.h {
            *h *= k;
        }
        for e in &mut self.edges {
            e.2 *= k;
        }
        for row in &mut self.adj {
            for entry in row {
                entry.1 *= k;
            }
        }
    }

    /// Rescales so that `max(max|h|, max|J|) == 1` (no-op for an all-zero
    /// problem). This mirrors the auto-scaling D-Wave front ends apply before
    /// programming, and returns the applied factor.
    pub fn normalize(&mut self) -> f64 {
        let m = f64::max(self.max_abs_h(), self.max_abs_j());
        if m > 0.0 {
            self.scale(1.0 / m);
            1.0 / m
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-spin ferromagnet with a field: E = s0 − s1 − 2 s0 s1.
    fn tiny() -> Ising {
        let mut ising = Ising::new(2);
        ising.set_h(0, 1.0);
        ising.set_h(1, -1.0);
        ising.set_coupling(0, 1, -2.0);
        ising
    }

    #[test]
    fn energy_of_all_states() {
        let m = tiny();
        assert_eq!(m.energy(&[1, 1]), -2.0);
        assert_eq!(m.energy(&[1, -1]), 4.0);
        assert_eq!(m.energy(&[-1, 1]), 0.0);
        assert_eq!(m.energy(&[-1, -1]), -2.0);
    }

    #[test]
    fn local_field_and_flip_delta_consistent() {
        let m = tiny();
        for s0 in [-1i8, 1] {
            for s1 in [-1i8, 1] {
                let spins = [s0, s1];
                for k in 0..2 {
                    let mut flipped = spins;
                    flipped[k] = -flipped[k];
                    let expected = m.energy(&flipped) - m.energy(&spins);
                    assert!(
                        (m.flip_delta(&spins, k) - expected).abs() < 1e-12,
                        "delta mismatch at {spins:?} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn coupling_is_symmetric_and_updatable() {
        let mut m = tiny();
        assert_eq!(m.coupling(0, 1), -2.0);
        assert_eq!(m.coupling(1, 0), -2.0);
        m.add_coupling(1, 0, 0.5);
        assert_eq!(m.coupling(0, 1), -1.5);
        // Adjacency mirrors stay in sync.
        assert_eq!(m.neighbors(0), &[(1usize, -1.5)]);
        assert_eq!(m.neighbors(1), &[(0usize, -1.5)]);
    }

    #[test]
    fn absent_coupling_reads_zero() {
        let m = Ising::new(3);
        assert_eq!(m.coupling(0, 2), 0.0);
        assert_eq!(m.degree(0), 0);
    }

    #[test]
    fn setting_edge_to_zero_preserves_topology() {
        let mut m = tiny();
        m.set_coupling(0, 1, 0.0);
        assert_eq!(m.coupling(0, 1), 0.0);
        assert_eq!(m.degree(0), 1, "edge should remain in the graph");
    }

    #[test]
    fn normalize_caps_magnitudes_at_one() {
        let mut m = tiny();
        let factor = m.normalize();
        assert!((factor - 0.5).abs() < 1e-12);
        assert!((m.max_abs_j() - 1.0).abs() < 1e-12);
        assert!((m.max_abs_h() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_empty_is_noop() {
        let mut m = Ising::new(4);
        assert_eq!(m.normalize(), 1.0);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_coupling_panics() {
        Ising::new(2).set_coupling(1, 1, 1.0);
    }
}
