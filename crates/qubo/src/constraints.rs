//! Soft-information constraint injection — the paper's §3.1 / Figure 4.
//!
//! Given pre-knowledge that some bits are very likely to take particular
//! values (soft information from the wireless receiver), the scheme adds
//! penalty terms to the QUBO that steer the search away from unlikely
//! regions "without harming the global optimum (ideally)":
//!
//! * Figure 4's pair form: `C·(q_a − 1)·(q_b − 1)` — zero when either bit is
//!   1, `+C` when both are 0 — pushes `(q_a, q_b)` toward `(1, 1)`.
//! * The complementary forms for target values 0 are obtained by substituting
//!   `q → (1 − q)`.
//!
//! Expanding `C·(q_a − 1)(q_b − 1) = C·q_a q_b − C·q_a − C·q_b + C` gives the
//! QUBO updates implemented here; the constant `C` is tracked as an offset so
//! energies remain comparable before/after injection.
//!
//! The paper's finding (reproduced by the `fig4_softinfo` bench) is that on
//! noisy analog hardware the constraint strength `C` is hard to tune: too
//! weak does nothing, too strong distorts the landscape and, under coefficient
//! noise, displaces the global optimum.

use crate::model::Qubo;

/// A penalty pushing a pair of variables toward target values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairConstraint {
    /// First variable index.
    pub a: usize,
    /// Second variable index.
    pub b: usize,
    /// Target value for `a` (0 or 1).
    pub target_a: u8,
    /// Target value for `b` (0 or 1).
    pub target_b: u8,
    /// Penalty strength `C > 0`.
    pub strength: f64,
}

/// A penalty pushing a single variable toward a target value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasConstraint {
    /// Variable index.
    pub var: usize,
    /// Target value (0 or 1).
    pub target: u8,
    /// Penalty strength `C > 0`.
    pub strength: f64,
}

/// Applies a pair constraint in place. Returns the constant-offset change
/// (energies of the modified QUBO relate to the original by
/// `E_new(q) = E_old(q) + penalty(q) − offset`, with `penalty ∈ {0, …}`
/// vanishing exactly on target-consistent assignments).
///
/// # Panics
/// Panics on out-of-range indices, `a == b`, non-binary targets, or
/// non-positive strength.
pub fn apply_pair_constraint(qubo: &mut Qubo, c: &PairConstraint) -> f64 {
    let n = qubo.num_vars();
    assert!(
        c.a < n && c.b < n,
        "apply_pair_constraint: index out of range"
    );
    assert!(c.a != c.b, "apply_pair_constraint: a == b");
    assert!(c.target_a <= 1 && c.target_b <= 1, "targets must be 0/1");
    assert!(c.strength > 0.0, "strength must be positive");

    // Work in terms of u = q or (1−q) so both variables target value 1,
    // then expand C·(u_a − 1)(u_b − 1).
    //
    // With t_a = target_a, substituting q_a → (1 − q_a) when t_a == 0 flips
    // signs of the linear pieces; the four cases expand to:
    //
    //   (t_a, t_b) = (1, 1):  C q_a q_b − C q_a − C q_b + C
    //   (1, 0):              −C q_a q_b + 0 q_a           + 0   → C q_a(q_b−1)·(−1)… (expanded below)
    //   (0, 1):   symmetric
    //   (0, 0):   C q_a q_b                                + 0
    //
    // Rather than hand-expanding each case, compute coefficients generically:
    // u = s·q + o with (s, o) = (1, 0) for target 1 and (−1, 1) for target 0.
    let (sa, oa) = if c.target_a == 1 {
        (1.0, 0.0)
    } else {
        (-1.0, 1.0)
    };
    let (sb, ob) = if c.target_b == 1 {
        (1.0, 0.0)
    } else {
        (-1.0, 1.0)
    };
    // C (u_a − 1)(u_b − 1) = C (sa q_a + oa − 1)(sb q_b + ob − 1)
    let ka = oa - 1.0;
    let kb = ob - 1.0;
    // = C [ sa sb q_a q_b + sa kb q_a + sb ka q_b + ka kb ]
    qubo.add(c.a, c.b, c.strength * sa * sb);
    qubo.add(c.a, c.a, c.strength * sa * kb);
    qubo.add(c.b, c.b, c.strength * sb * ka);
    c.strength * ka * kb
}

/// Applies a single-variable bias in place; returns the constant offset.
///
/// Target 1 adds `C·(1 − q)`; target 0 adds `C·q`. Both are non-negative and
/// vanish exactly at the target.
///
/// # Panics
/// Panics on out-of-range index, non-binary target, or non-positive strength.
pub fn apply_bias_constraint(qubo: &mut Qubo, c: &BiasConstraint) -> f64 {
    assert!(
        c.var < qubo.num_vars(),
        "apply_bias_constraint: index range"
    );
    assert!(c.target <= 1, "target must be 0/1");
    assert!(c.strength > 0.0, "strength must be positive");
    if c.target == 1 {
        qubo.add(c.var, c.var, -c.strength);
        c.strength
    } else {
        qubo.add(c.var, c.var, c.strength);
        0.0
    }
}

/// Applies a batch of pair constraints; returns the summed constant offset.
pub fn apply_pair_constraints(qubo: &mut Qubo, constraints: &[PairConstraint]) -> f64 {
    constraints
        .iter()
        .map(|c| apply_pair_constraint(qubo, c))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_minimum;
    use crate::generator::random_qubo;
    use hqw_math::Rng64;

    /// Penalty evaluated directly from the definition for cross-checking.
    fn reference_penalty(bits: &[u8], c: &PairConstraint) -> f64 {
        let ua = if c.target_a == 1 {
            bits[c.a] as f64
        } else {
            1.0 - bits[c.a] as f64
        };
        let ub = if c.target_b == 1 {
            bits[c.b] as f64
        } else {
            1.0 - bits[c.b] as f64
        };
        c.strength * (ua - 1.0) * (ub - 1.0)
    }

    #[test]
    fn pair_constraint_matches_definition_for_all_targets() {
        for ta in 0..2u8 {
            for tb in 0..2u8 {
                let base = Qubo::new(2);
                let c = PairConstraint {
                    a: 0,
                    b: 1,
                    target_a: ta,
                    target_b: tb,
                    strength: 2.5,
                };
                let mut modified = base.clone();
                let offset = apply_pair_constraint(&mut modified, &c);
                for bits in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
                    let expected = base.energy(&bits) + reference_penalty(&bits, &c);
                    let actual = modified.energy(&bits) + offset;
                    assert!(
                        (expected - actual).abs() < 1e-12,
                        "targets ({ta},{tb}) bits {bits:?}: {expected} vs {actual}"
                    );
                }
            }
        }
    }

    #[test]
    fn penalty_vanishes_on_target_and_is_positive_off_target() {
        let c = PairConstraint {
            a: 0,
            b: 1,
            target_a: 1,
            target_b: 1,
            strength: 3.0,
        };
        assert_eq!(reference_penalty(&[1, 1], &c), 0.0);
        assert_eq!(reference_penalty(&[1, 0], &c), 0.0); // either-one semantics of Fig. 4
        assert_eq!(reference_penalty(&[0, 0], &c), 3.0);
    }

    #[test]
    fn bias_constraint_pushes_toward_target() {
        let mut q = Qubo::new(1);
        let offset = apply_bias_constraint(
            &mut q,
            &BiasConstraint {
                var: 0,
                target: 1,
                strength: 2.0,
            },
        );
        // E(q=1) + offset = 0, E(q=0) + offset = 2.
        assert_eq!(q.energy(&[1]) + offset, 0.0);
        assert_eq!(q.energy(&[0]) + offset, 2.0);

        let mut q0 = Qubo::new(1);
        let off0 = apply_bias_constraint(
            &mut q0,
            &BiasConstraint {
                var: 0,
                target: 0,
                strength: 2.0,
            },
        );
        assert_eq!(q0.energy(&[0]) + off0, 0.0);
        assert_eq!(q0.energy(&[1]) + off0, 2.0);
    }

    #[test]
    fn correct_constraints_preserve_the_global_optimum() {
        // Constraints consistent with the true optimum must not displace it
        // ("without harming the global optimum").
        let mut rng = Rng64::new(71);
        for _ in 0..10 {
            let q = random_qubo(8, &mut rng);
            let (best, e_best) = exhaustive_minimum(&q);
            let mut constrained = q.clone();
            let c = PairConstraint {
                a: 0,
                b: 3,
                target_a: best[0],
                target_b: best[3],
                strength: 5.0,
            };
            let offset = apply_pair_constraint(&mut constrained, &c);
            let (best2, e2) = exhaustive_minimum(&constrained);
            assert!(
                (e2 + offset - e_best).abs() < 1e-9,
                "optimum energy moved: {} vs {}",
                e2 + offset,
                e_best
            );
            assert!(
                (q.energy(&best2) - e_best).abs() < 1e-9,
                "optimum state displaced"
            );
        }
    }

    #[test]
    fn wrong_strong_constraints_can_displace_the_optimum() {
        // The §3.1 failure mode: a confident-but-wrong constraint with large C
        // moves the global optimum. Find an instance demonstrating it.
        let mut rng = Rng64::new(73);
        let mut demonstrated = false;
        for _ in 0..20 {
            let q = random_qubo(8, &mut rng);
            let (best, _) = exhaustive_minimum(&q);
            let mut constrained = q.clone();
            let c = PairConstraint {
                a: 0,
                b: 1,
                target_a: 1 - best[0], // deliberately wrong
                target_b: 1 - best[1],
                strength: 50.0,
            };
            let _ = apply_pair_constraint(&mut constrained, &c);
            let (best2, _) = exhaustive_minimum(&constrained);
            if best2 != best {
                demonstrated = true;
                break;
            }
        }
        assert!(demonstrated, "expected at least one displaced optimum");
    }

    #[test]
    #[should_panic(expected = "a == b")]
    fn pair_constraint_rejects_identical_vars() {
        let mut q = Qubo::new(2);
        apply_pair_constraint(
            &mut q,
            &PairConstraint {
                a: 1,
                b: 1,
                target_a: 1,
                target_b: 1,
                strength: 1.0,
            },
        );
    }
}
