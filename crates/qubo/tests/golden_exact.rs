//! Golden-output regression for the `Exact` SA kernel.
//!
//! These samples were captured from the pre-optimization sweep kernel (the
//! PR-1 incremental-CSR implementation). The `Exact` kernel mode promises
//! **byte-identical** outputs across implementation changes — same bits, same
//! tracked-energy float bit patterns, same occurrence counts — so any
//! optimization that reorders a float operation or consumes the RNG
//! differently trips this test. (The `Fast` mode is exempt: it promises
//! statistical equivalence only, and is tested elsewhere.)

use hqw_math::Rng64;
use hqw_qubo::generator::random_qubo;
use hqw_qubo::sa::{sample_qubo, SaParams};

/// (bits, tracked-energy bit pattern, occurrences) triples in sample order.
fn collect(set: &hqw_qubo::SampleSet) -> Vec<(Vec<u8>, u64, u64)> {
    set.iter()
        .map(|s| (s.bits.clone(), s.energy.to_bits(), s.occurrences))
        .collect()
}

#[test]
fn converged_cold_schedule_golden() {
    let q = random_qubo(24, &mut Rng64::new(71));
    let params = SaParams {
        sweeps: 64,
        num_reads: 8,
        threads: 1,
        ..SaParams::default()
    };
    let set = sample_qubo(&q, &params, &mut Rng64::new(9));
    let expected_bits: Vec<u8> = vec![
        1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1,
    ];
    assert_eq!(
        collect(&set),
        vec![(expected_bits, 0xc0347a87ef39245b, 8)],
        "Exact kernel drifted from the pre-change golden (cold schedule)"
    );
}

#[test]
fn hot_short_schedule_golden() {
    // Hot + short keeps every read distinct, so this golden pins eight
    // independent Metropolis trajectories (start-state draws, accept draws,
    // tracked-energy accumulation order) rather than one converged optimum.
    let q = random_qubo(24, &mut Rng64::new(71));
    let params = SaParams {
        beta_initial: 0.2,
        beta_final: 1.5,
        sweeps: 6,
        num_reads: 5,
        threads: 1,
        ..SaParams::default()
    };
    let set = sample_qubo(&q, &params, &mut Rng64::new(17));
    let expected: Vec<(Vec<u8>, u64, u64)> = vec![
        (
            vec![
                1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1,
            ],
            0xc0347a87ef39245a,
            1,
        ),
        (
            vec![
                1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 1,
            ],
            0xc03313a8236bdcf8,
            1,
        ),
        (
            vec![
                1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1,
            ],
            0xc032ff9039df3519,
            1,
        ),
        (
            vec![
                0, 0, 0, 1, 0, 1, 1, 1, 1, 1, 1, 0, 0, 1, 1, 1, 1, 1, 0, 1, 1, 1, 0, 1,
            ],
            0xc031b203edb78b5e,
            1,
        ),
        (
            vec![
                1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1,
            ],
            0xc03146b074f9d4d2,
            1,
        ),
    ];
    assert_eq!(
        collect(&set),
        expected,
        "Exact kernel drifted from the pre-change golden (hot schedule)"
    );
}

#[test]
fn goldens_hold_at_every_thread_count() {
    // The same goldens through the parallel fan-out: 1 thread, several, all.
    let q = random_qubo(24, &mut Rng64::new(71));
    for threads in [2, 3, 0] {
        let params = SaParams {
            sweeps: 64,
            num_reads: 8,
            threads,
            ..SaParams::default()
        };
        let set = sample_qubo(&q, &params, &mut Rng64::new(9));
        let samples = collect(&set);
        assert_eq!(samples.len(), 1, "threads={threads}");
        assert_eq!(samples[0].1, 0xc0347a87ef39245b, "threads={threads}");
        assert_eq!(samples[0].2, 8, "threads={threads}");
    }
}
