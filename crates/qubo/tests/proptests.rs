//! Property-based tests for the QUBO/Ising substrate.

use hqw_math::Rng64;
use hqw_qubo::csr::BitSpins;
use hqw_qubo::exact::exhaustive_minimum;
use hqw_qubo::generator::{random_qubo, sparse_random_qubo};
use hqw_qubo::preprocess::preprocess;
use hqw_qubo::sa::{sample_qubo, SaParams, SweepKernel};
use hqw_qubo::solution::{bits_to_spins, spins_to_bits};
use hqw_qubo::{greedy_search, CsrIsing, LocalFieldState, Qubo, SampleSet};
use proptest::prelude::*;

fn random_bits(n: usize, rng: &mut Rng64) -> Vec<u8> {
    (0..n).map(|_| rng.next_bool() as u8).collect()
}

fn random_spins(n: usize, rng: &mut Rng64) -> Vec<i8> {
    (0..n)
        .map(|_| if rng.next_bool() { 1 } else { -1 })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn qubo_ising_energies_agree(seed in any::<u64>(), n in 1usize..24) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let (ising, offset) = q.to_ising();
        for _ in 0..8 {
            let bits = random_bits(n, &mut rng);
            let spins = bits_to_spins(&bits);
            let eq = q.energy(&bits);
            let ei = ising.energy(&spins) + offset;
            prop_assert!((eq - ei).abs() < 1e-9, "QUBO {eq} vs Ising {ei}");
        }
    }

    #[test]
    fn ising_qubo_round_trip(seed in any::<u64>(), n in 1usize..16) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let (ising, offset) = q.to_ising();
        let (q2, constant) = Qubo::from_ising_with_constant(&ising, offset);
        prop_assert!(constant.abs() < 1e-9);
        for _ in 0..4 {
            let bits = random_bits(n, &mut rng);
            prop_assert!((q.energy(&bits) - q2.energy(&bits)).abs() < 1e-9);
        }
    }

    #[test]
    fn flip_delta_matches_recompute(seed in any::<u64>(), n in 1usize..20) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let bits = random_bits(n, &mut rng);
        for k in 0..n {
            let mut flipped = bits.clone();
            flipped[k] ^= 1;
            let expected = q.energy(&flipped) - q.energy(&bits);
            prop_assert!((q.flip_delta(&bits, k) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn ising_flip_delta_matches_recompute(seed in any::<u64>(), n in 1usize..20) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let (ising, _) = q.to_ising();
        let spins: Vec<i8> = (0..n).map(|_| if rng.next_bool() { 1 } else { -1 }).collect();
        for k in 0..n {
            let mut flipped = spins.clone();
            flipped[k] = -flipped[k];
            let expected = ising.energy(&flipped) - ising.energy(&spins);
            prop_assert!((ising.flip_delta(&spins, k) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn preprocessing_preserves_optimum(seed in any::<u64>(), n in 2usize..12,
                                       density in 0.1f64..1.0) {
        let mut rng = Rng64::new(seed);
        let q = sparse_random_qubo(n, density, &mut rng);
        let p = preprocess(&q);
        let (_, e_original) = exhaustive_minimum(&q);
        let e_reduced = if p.reduced.num_vars() == 0 {
            p.offset
        } else {
            let (rb, re) = exhaustive_minimum(&p.reduced);
            let full = p.reconstruct(&rb);
            prop_assert!((q.energy(&full) - (re + p.offset)).abs() < 1e-9);
            re + p.offset
        };
        prop_assert!((e_original - e_reduced).abs() < 1e-9,
            "optimum moved: {e_original} vs {e_reduced}");
    }

    #[test]
    fn greedy_energy_is_self_consistent(seed in any::<u64>(), n in 1usize..32) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let (bits, e) = greedy_search(&q, Default::default());
        prop_assert_eq!(bits.len(), n);
        prop_assert!((q.energy(&bits) - e).abs() < 1e-9);
    }

    #[test]
    fn bits_spins_round_trip(bits in prop::collection::vec(0u8..2, 0..64)) {
        let spins = bits_to_spins(&bits);
        prop_assert!(spins.iter().all(|&s| s == 1 || s == -1));
        prop_assert_eq!(spins_to_bits(&spins), bits);
    }

    #[test]
    fn sample_set_totals_reconcile(seed in any::<u64>(), n in 1usize..8, reads in 1usize..40) {
        let mut rng = Rng64::new(seed);
        let q = random_qubo(n, &mut rng);
        let set = SampleSet::from_reads((0..reads).map(|_| {
            let bits = random_bits(n, &mut rng);
            let e = q.energy(&bits);
            (bits, e)
        }));
        prop_assert_eq!(set.total_reads(), reads as u64);
        let occ_sum: u64 = set.iter().map(|s| s.occurrences).sum();
        prop_assert_eq!(occ_sum, reads as u64);
        // Sorted ascending by energy.
        let energies: Vec<f64> = set.iter().map(|s| s.energy).collect();
        prop_assert!(energies.windows(2).all(|w| w[0] <= w[1]));
        // p★ over the whole range is 1.
        prop_assert!((set.ground_probability(set.best_energy(), 1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cached_local_fields_survive_long_flip_sequences(
        seed in any::<u64>(), n in 2usize..24, density in 0.1f64..1.0
    ) {
        // The incremental h_eff cache must agree with a from-scratch
        // local_field recompute after arbitrarily long accepted-flip
        // sequences — the invariant every sweep kernel rests on.
        let mut rng = Rng64::new(seed);
        let q = sparse_random_qubo(n, density, &mut rng);
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let mut state = LocalFieldState::new(&csr, random_spins(n, &mut rng));
        for step in 0..400 {
            let k = rng.next_index(n);
            // The O(1) delta must match both the CSR and the adjacency-list
            // from-scratch evaluations before the flip is applied.
            let exact = csr.flip_delta(state.spins(), k);
            prop_assert!((state.flip_delta(k) - exact).abs() < 1e-9,
                "delta drifted at step {step}");
            prop_assert!((exact - ising.flip_delta(state.spins(), k)).abs() < 1e-9);
            state.flip(&csr, k);
        }
        prop_assert!(state.max_field_error(&csr) < 1e-9,
            "h_eff drifted: {}", state.max_field_error(&csr));
        prop_assert!((state.energy() - ising.energy(state.spins())).abs()
            < 1e-9 * (1.0 + state.energy().abs()),
            "tracked energy drifted: {} vs {}", state.energy(), ising.energy(state.spins()));
    }

    #[test]
    fn sa_parallel_reads_match_serial_bit_for_bit(
        seed in any::<u64>(), n in 2usize..16, reads in 1usize..12
    ) {
        // Determinism regression: SplitMix-derived per-read streams make the
        // fan-out thread-count invariant, including non-dividing counts.
        let q = random_qubo(n, &mut Rng64::new(seed));
        let run = |threads| {
            let params = SaParams {
                num_reads: reads,
                sweeps: 24,
                threads,
                kernel: SweepKernel::Exact,
                ..SaParams::default()
            };
            sample_qubo(&q, &params, &mut Rng64::new(seed ^ 0xA5A5))
        };
        let serial = run(1);
        for threads in [3usize, 0] {
            let parallel = run(threads);
            prop_assert_eq!(serial.total_reads(), parallel.total_reads());
            prop_assert_eq!(serial.num_distinct(), parallel.num_distinct());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                prop_assert_eq!(&a.bits, &b.bits);
                prop_assert_eq!(a.energy.to_bits(), b.energy.to_bits());
                prop_assert_eq!(a.occurrences, b.occurrences);
            }
        }
    }

    #[test]
    fn bit_packed_spins_round_trip(seed in any::<u64>(), n in 0usize..200) {
        // BitSpins packs 64 spins per word; unpacking must reproduce the
        // ±1 vector exactly at every length, including word boundaries.
        let spins = random_spins(n, &mut Rng64::new(seed));
        let packed = BitSpins::from_spins(&spins);
        prop_assert_eq!(packed.len(), n);
        prop_assert_eq!(packed.to_spins(), spins.clone());
        for (k, &s) in spins.iter().enumerate() {
            prop_assert_eq!(packed.get(k), s);
            prop_assert_eq!(packed.sign_f32(k), s as f32);
            prop_assert_eq!(packed.apply_sign_f32(k, 2.5), 2.5 * s as f32);
        }
        // A double flip is the identity; a single flip negates exactly one.
        let mut flipped = BitSpins::from_spins(&spins);
        if n > 0 {
            let k = seed as usize % n;
            flipped.flip(k);
            prop_assert_eq!(flipped.get(k), -spins[k]);
            flipped.flip(k);
            prop_assert_eq!(flipped.to_spins(), spins);
        }
    }

    #[test]
    fn colored_sweep_order_is_proper_and_complete(
        seed in any::<u64>(), n in 1usize..48, density in 0.02f64..1.0
    ) {
        // The Fast kernel sweeps `coloring().order()`: it must touch every
        // spin exactly once per pass (the order is a permutation of 0..n),
        // and each color class must be an independent set of the coupling
        // graph (no proposal in a class reads a field another proposal in
        // the same class just wrote).
        let q = sparse_random_qubo(n, density, &mut Rng64::new(seed));
        let (ising, _) = q.to_ising();
        let csr = CsrIsing::from_ising(&ising);
        let coloring = csr.coloring();
        let mut seen = vec![false; n];
        for &k in coloring.order() {
            prop_assert!(!seen[k as usize], "spin {} visited twice in one pass", k);
            seen[k as usize] = true;
        }
        prop_assert!(seen.iter().all(|&v| v), "order misses spins");
        for class in coloring.classes() {
            for &a in class {
                let (cols, _) = csr.row(a as usize);
                for &b in cols {
                    prop_assert!(
                        !class.contains(&b),
                        "coupled spins {} and {} share a color", a, b
                    );
                }
            }
        }
    }

    #[test]
    fn fast_kernel_reads_are_thread_count_invariant(
        seed in any::<u64>(), n in 2usize..16, reads in 1usize..10
    ) {
        // The Fast kernel is only *statistically* equivalent to Exact, but
        // each read is still a deterministic function of its per-read seed,
        // so the fan-out must stay bit-identical at any thread count.
        let q = random_qubo(n, &mut Rng64::new(seed));
        let run = |threads| {
            let params = SaParams {
                num_reads: reads,
                sweeps: 24,
                threads,
                kernel: SweepKernel::Fast,
                ..SaParams::default()
            };
            sample_qubo(&q, &params, &mut Rng64::new(seed ^ 0xC3C3))
        };
        let serial = run(1);
        for threads in [3usize, 0] {
            let parallel = run(threads);
            prop_assert_eq!(serial.total_reads(), parallel.total_reads());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                prop_assert_eq!(&a.bits, &b.bits);
                prop_assert_eq!(a.energy.to_bits(), b.energy.to_bits());
            }
        }
    }

    #[test]
    fn sa_reported_energies_are_exact(seed in any::<u64>(), n in 1usize..14) {
        // The tracked (incremental) Ising energy plus offset must equal the
        // full QUBO energy of every reported sample.
        let q = random_qubo(n, &mut Rng64::new(seed));
        let params = SaParams { num_reads: 6, sweeps: 32, ..SaParams::default() };
        let set = sample_qubo(&q, &params, &mut Rng64::new(seed ^ 0x5A5A));
        for s in set.iter() {
            prop_assert!((q.energy(&s.bits) - s.energy).abs() < 1e-9 * (1.0 + s.energy.abs()));
        }
    }
}
