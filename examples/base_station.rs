//! Base-station scenario: a stream of channel uses flows through the
//! pipelined classical-quantum computation structure (the paper's Figure 2).
//!
//! The classical stage (Greedy Search) runs one channel use ahead of the
//! quantum stage (Reverse Annealing), exactly as the paper's pipeline
//! sketch; the example verifies the pipelined results match a sequential
//! run bit-for-bit and reports link-level quality plus the programmed-time
//! budget per channel use.
//!
//! ```sh
//! cargo run --release --example base_station
//! ```

use hqw::core::event_sim::{simulate_pipeline, uniform_stage};
use hqw::core::pipeline::{run_pipelined, run_sequential};
use hqw::core::stages::GreedyInitializer;
use hqw::prelude::*;

fn main() {
    let uses = 12;
    let mut rng = Rng64::new(2026);
    let config = InstanceConfig::paper(6, Modulation::Qam16); // 24 vars/use
    let stream = DetectionInstance::generate_batch(&config, uses, &mut rng);

    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 100,
            ..Default::default()
        },
    );
    let solver = HybridSolver::new(
        sampler,
        HybridConfig {
            protocol: Protocol::paper_ra(0.69),
            initializer: Box::new(GreedyInitializer::default()),
        },
    );

    // Process the stream, pipelined and sequentially.
    let t0 = std::time::Instant::now();
    let pipelined = run_pipelined(&solver, &stream, 99, 3);
    let pipelined_wall = t0.elapsed();
    let t1 = std::time::Instant::now();
    let sequential = run_sequential(&solver, &stream, 99);
    let sequential_wall = t1.elapsed();

    let identical = pipelined
        .iter()
        .zip(&sequential)
        .all(|(a, b)| a.best_bits == b.best_bits);
    println!(
        "Processed {uses} channel uses: pipelined {pipelined_wall:?} vs sequential \
         {sequential_wall:?} (outputs {})",
        if identical { "bit-identical" } else { "DIFFER" }
    );

    // Link-level quality.
    let mut bits_total = 0usize;
    let mut bit_errors = 0usize;
    let mut exact = 0usize;
    for (inst, result) in stream.iter().zip(&pipelined) {
        let ber = inst.score_ber(&result.best_bits);
        bits_total += inst.num_vars();
        bit_errors += (ber * inst.num_vars() as f64).round() as usize;
        if result.best_bits == inst.tx_natural_bits {
            exact += 1;
        }
    }
    println!(
        "Link quality: {}/{} channel uses decoded exactly; aggregate BER {:.3}%",
        exact,
        uses,
        100.0 * bit_errors as f64 / bits_total as f64
    );

    // Programmed-time budget per use (the quantity a real deployment cares
    // about): classical latency + QPU sampling time.
    let classical_us = pipelined[0].classical_us;
    let quantum_us = pipelined[0].quantum_timing.sampling_us();
    println!(
        "Programmed time per use: classical {classical_us:.2} µs + quantum {quantum_us:.0} µs \
         ({} reads × {:.2} µs anneal + readout overheads)",
        pipelined[0].quantum_timing.num_reads, pipelined[0].quantum_timing.anneal_us_per_read,
    );

    // Pipeline headroom analysis at this stage balance.
    let report = simulate_pipeline(
        quantum_us.max(classical_us) * 1.05,
        &[
            uniform_stage("classical", classical_us, uses),
            uniform_stage("quantum", quantum_us, uses),
        ],
        3_000.0,
    );
    println!(
        "Discrete-event check: throughput {:.4} uses/ms, max queue {}, {} deadline violations \
         against a 3 ms turnaround budget",
        report.throughput_per_ms,
        report.max_queue_depth.iter().max().unwrap(),
        report.deadline_violations
    );
}
