//! Noisy-uplink scenario: classical detectors vs the hybrid under AWGN.
//!
//! The paper's evaluation is noiseless (§4.2); this example exercises the
//! extension machinery — AWGN injection, MMSE/K-best/sphere detectors, LLR
//! soft information — on a 4-user 16-QAM uplink across an SNR sweep, with
//! exhaustively-certified ML ground truth per instance.
//!
//! ```sh
//! cargo run --release --example noisy_uplink
//! ```

use hqw::phy::channel::snr_db_to_noise_variance;
use hqw::phy::detect::{Detector, KBest, Mmse, SphereDecoder, ZeroForcing};
use hqw::phy::metrics::bit_error_rate;
use hqw::prelude::*;
use hqw::qubo::exact::exhaustive_minimum;

fn main() {
    let users = 4;
    let instances_per_snr = 8;
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 80,
            ..Default::default()
        },
    );

    println!("BER vs SNR, {users}-user 16-QAM uplink ({instances_per_snr} channel uses per point)");
    println!();
    println!("  SNR(dB)     ZF     MMSE   K-best8   SD(ML)   hybrid   ML=TX?");
    println!("  -------------------------------------------------------------");

    for &snr_db in &[8.0, 12.0, 16.0, 20.0] {
        let noise_var = snr_db_to_noise_variance(snr_db, users);
        let mut config = InstanceConfig::paper(users, Modulation::Qam16);
        config.noise_variance = noise_var;

        let mut rng = Rng64::new(snr_db as u64 * 131 + 7);
        let mut ber = [0.0f64; 5]; // zf, mmse, kbest, sd, hybrid
        let mut ml_is_tx = 0usize;
        for k in 0..instances_per_snr {
            let inst = DetectionInstance::generate(&config, &mut rng);

            // Classical detectors (scored on wireless Gray bits).
            let zf = ZeroForcing.detect(&inst.system, &inst.h, &inst.y);
            let mmse = Mmse::new(noise_var).detect(&inst.system, &inst.h, &inst.y);
            let kb = KBest::new(8).detect(&inst.system, &inst.h, &inst.y);
            let sd = SphereDecoder::exact().detect(&inst.system, &inst.h, &inst.y);
            ber[0] += bit_error_rate(&inst.tx_gray_bits, &zf.gray_bits);
            ber[1] += bit_error_rate(&inst.tx_gray_bits, &mmse.gray_bits);
            ber[2] += bit_error_rate(&inst.tx_gray_bits, &kb.gray_bits);
            ber[3] += bit_error_rate(&inst.tx_gray_bits, &sd.gray_bits);

            // Hybrid GS+RA on the QUBO; certify whether the ML optimum is
            // still the transmitted vector at this SNR.
            let (ml_bits, _) = exhaustive_minimum(&inst.reduction.qubo);
            if ml_bits == inst.tx_natural_bits {
                ml_is_tx += 1;
            }
            let solver = HybridSolver::paper_prototype(sampler.clone(), 0.69);
            let result = solver.solve(&inst, 1000 + k as u64);
            ber[4] += inst.score_ber(&result.best_bits);
        }
        for b in &mut ber {
            *b /= instances_per_snr as f64;
        }
        println!(
            "  {snr_db:>5.1}   {:>6.3} {:>7.3} {:>8.3} {:>8.3} {:>8.3}   {}/{}",
            ber[0], ber[1], ber[2], ber[3], ber[4], ml_is_tx, instances_per_snr
        );
    }
    println!();
    println!(
        "Expected shape: ZF worst, MMSE better, K-best near the exact sphere decoder; the \
         hybrid tracks the ML detectors when the anneal finds the QUBO optimum. The last column \
         counts instances where the ML optimum is the transmitted vector — at low SNR even exact \
         ML makes errors, which bounds every detector."
    );

    // Soft output from the quantum detector: the annealer's sample set is a
    // (rough) Boltzmann ensemble, so occurrence-weighted bit marginals give
    // per-bit reliabilities a channel decoder can consume.
    println!();
    let noise_var = snr_db_to_noise_variance(14.0, users);
    let mut config = InstanceConfig::paper(users, Modulation::Qam16);
    config.noise_variance = noise_var;
    let mut rng = Rng64::new(4242);
    let inst = DetectionInstance::generate(&config, &mut rng);
    let solver = HybridSolver::paper_prototype(sampler.clone(), 0.69);
    let result = solver.solve(&inst, 99);
    let llrs = hqw::phy::llr::sample_llrs(&result.samples, inst.num_vars());
    let hard_ber = inst.score_ber(&result.best_bits);
    let confident = llrs.iter().filter(|l| l.abs() > 1.0).count();
    let correct_confident = llrs
        .iter()
        .zip(&inst.tx_natural_bits)
        .filter(|(l, _)| l.abs() > 1.0)
        .filter(|(l, &b)| (if **l > 0.0 { 0u8 } else { 1u8 }) == b)
        .count();
    println!(
        "Soft output at 14 dB: hybrid hard BER {:.1}%; {}/{} bits confident (|LLR| > 1), of \
         which {} agree with the transmission — reliabilities a channel decoder can exploit.",
        100.0 * hard_ber,
        confident,
        inst.num_vars(),
        correct_confident
    );
}
