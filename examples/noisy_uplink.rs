//! Noisy-uplink scenario: classical detectors vs the QUBO path under AWGN,
//! driven through the unified experiment API.
//!
//! The paper's evaluation is noiseless (§4.2); this example sweeps a noisy
//! 4-user 16-QAM uplink across SNR using the validated builder path
//! (`SnrSweepConfig::builder()…build()`), a custom detector roster, the
//! scenario engine, and the unified `Report` surface — then prints the
//! declarative `ExperimentSpec` JSON that `hqw run` would accept to
//! reproduce the sweep's grid shape, plus a soft-output (LLR) demo.
//!
//! ```sh
//! cargo run --release --example noisy_uplink
//! ```

use hqw::phy::channel::snr_db_to_noise_variance;
use hqw::phy::detect::{KBest, Mmse, SphereDecoder, ZeroForcing};
use hqw::prelude::*;
use hqw::qubo::sa::SaParams;
use std::sync::Arc;

fn main() {
    // 1. Declare the experiment: 4-user 16-QAM, four SNR points, paired
    //    channel realizations. `build()` validates — no panics downstream.
    let users = 4;
    let config = SnrSweepConfig::builder(users, Modulation::Qam16)
        .snr_db(vec![8.0, 12.0, 16.0, 20.0])
        .realizations(8)
        .seed(1313)
        .threads(0) // all cores; results are bit-identical for any value
        .build()
        .expect("a valid sweep configuration");

    // 2. A roster mixing the classical families with the QUBO/SA path.
    //    MMSE is noise-matched: it is rebuilt from each point's variance.
    let detectors = vec![
        ScenarioDetector::fixed(false, ZeroForcing),
        ScenarioDetector::noise_matched("MMSE", false, |nv| Arc::new(Mmse::new(nv))),
        ScenarioDetector::fixed(false, KBest::new(8)),
        ScenarioDetector::fixed(false, SphereDecoder::exact()),
        ScenarioDetector::fixed(
            true,
            QuboDetector::with_params(
                SaParams {
                    sweeps: 96,
                    num_reads: 16,
                    threads: 1,
                    ..SaParams::default()
                },
                1313,
            ),
        ),
    ];

    // 3. Run and render through the unified Report surface.
    let report = run_ber_sweep(&config, &detectors);
    println!(
        "BER vs SNR, {users}-user 16-QAM uplink ({} channel uses per point)",
        config.realizations
    );
    println!();
    println!("{}", report.render_table());

    // The sphere decoder is exact ML: nothing may beat it at any SNR.
    let ml = report
        .series
        .iter()
        .find(|s| s.detector == "SD")
        .expect("exact sphere decoder in the roster");
    for series in &report.series {
        for (p, ml_p) in series.points.iter().zip(&ml.points) {
            assert!(
                p.ber + 1e-12 >= ml_p.ber,
                "{} beat exact ML at {} dB",
                series.detector,
                p.snr_db
            );
        }
    }
    println!(
        "Expected shape: ZF worst, MMSE better, K-best near the exact sphere decoder; the \
         QUBO-SA arm tracks ML when the anneal finds the QUBO optimum — and exact-ML sphere \
         decoding lower-bounds every arm's BER (asserted above)."
    );
    println!();

    // 4. The same sweep as data: this document (run with the standard
    //    roster) is what `hqw run <file>.json` executes.
    println!("Declarative spec for `hqw run`:");
    println!("{}", ExperimentSpec::Ber(config).to_json());

    // 5. Soft output from the quantum path: the annealer's sample set is a
    //    (rough) Boltzmann ensemble, so occurrence-weighted bit marginals
    //    give per-bit reliabilities a channel decoder can consume.
    let noise_var = snr_db_to_noise_variance(14.0, users);
    let mut inst_config = InstanceConfig::paper(users, Modulation::Qam16);
    inst_config.noise_variance = noise_var;
    let mut rng = Rng64::new(4242);
    let inst = DetectionInstance::generate(&inst_config, &mut rng);
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 80,
            ..Default::default()
        },
    );
    let solver = HybridSolver::paper_prototype(sampler, 0.69);
    let result = solver.solve(&inst, 99);
    let llrs = hqw::phy::llr::sample_llrs(&result.samples, inst.num_vars());
    let hard_ber = inst.score_ber(&result.best_bits);
    let confident = llrs.iter().filter(|l| l.abs() > 1.0).count();
    let correct_confident = llrs
        .iter()
        .zip(&inst.tx_natural_bits)
        .filter(|(l, _)| l.abs() > 1.0)
        .filter(|(l, &b)| (if **l > 0.0 { 0u8 } else { 1u8 }) == b)
        .count();
    println!(
        "Soft output at 14 dB: hybrid hard BER {:.1}%; {}/{} bits confident (|LLR| > 1), of \
         which {} agree with the transmission — reliabilities a channel decoder can exploit.",
        100.0 * hard_ber,
        confident,
        inst.num_vars(),
        correct_confident
    );
}
