//! Schedule explorer: how the switch/pause location `s_p` shapes reverse
//! annealing — the trade-off at the heart of the paper's §4.3.
//!
//! "s_p should not be too close to 1, since quantum fluctuations require to
//! be strong enough to perturb the initialized state. At the same time, s_p
//! cannot be too close to 0, since the information related to the initial
//! state would be wiped out."
//!
//! ```sh
//! cargo run --release --example schedule_explorer
//! ```

use hqw::core::metrics::delta_e_percent;
use hqw::core::sweep::{sweep_fa_sp, sweep_ra_sp};
use hqw::prelude::*;

fn main() {
    let mut rng = Rng64::new(2024);
    let config = InstanceConfig::paper(8, Modulation::Qam16);
    let instance = DetectionInstance::generate(&config, &mut rng);
    let eg = instance.ground_energy();
    let qubo = &instance.reduction.qubo;

    // Seed RA with a greedy-search candidate, as the paper's prototype does.
    let (gs_bits, gs_energy) =
        hqw::qubo::greedy_search(qubo, hqw::qubo::greedy::GreedyConfig::default());
    println!(
        "Greedy seed quality: ΔE_IS = {:.2}%",
        delta_e_percent(gs_energy, eg)
    );
    println!();

    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 150,
            ..Default::default()
        },
    );

    let ra = sweep_ra_sp(&sampler, qubo, eg, &gs_bits, 11);
    let ra_truth = sweep_ra_sp(&sampler, qubo, eg, &instance.tx_natural_bits, 12);
    let fa = sweep_fa_sp(&sampler, qubo, eg, 13);

    println!("  s_p   dur(µs)  FA p★    RA(GS) p★  RA(ground) p★");
    println!("  ---------------------------------------------------");
    for ((f, r), t) in fa.iter().zip(&ra).zip(&ra_truth) {
        // Bar chart of the ground-seeded RA line (the paper's red curve).
        let bar = "#".repeat((t.p_star * 30.0).round() as usize);
        println!(
            "  {:>4.2}  {:>6.2}   {:>6.3}   {:>7.3}    {:>7.3}  {bar}",
            f.param, r.duration_us, f.p_star, r.p_star, t.p_star
        );
    }
    println!();
    println!(
        "Reading the table: RA(ground) fails at low s_p (the programmed state is wiped out by \
         strong fluctuations) and succeeds once s_p is high enough to act as a refined local \
         search — while plain FA stays near zero everywhere. RA's duration also shrinks with \
         s_p: shallower reversals are cheaper, which the paper's TTS metric rewards."
    );
}
