//! Quickstart: decode one Large-MIMO channel use with the paper's hybrid
//! classical-quantum prototype (Greedy Search + Reverse Annealing).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hqw::prelude::*;

fn main() {
    // 1. A base station receives one channel use: 8 users × 16-QAM over a
    //    unit-gain random-phase channel (the paper's §4.2 workload, 32 QUBO
    //    variables), noiseless.
    let mut rng = Rng64::new(9);
    let config = InstanceConfig::paper(8, Modulation::Qam16);
    let instance = DetectionInstance::generate(&config, &mut rng);
    println!(
        "Instance: {} users × {} ⇒ {} QUBO variables; ground energy {:.3}",
        instance.system.n_tx,
        instance.system.modulation.name(),
        instance.num_vars(),
        instance.ground_energy(),
    );

    // 2. Build the hybrid solver: Greedy Search seeds a Reverse Anneal at
    //    s_p = 0.69 on the calibrated simulated annealer.
    let sampler = QuantumSampler::new(
        DWaveProfile::calibrated(),
        SamplerConfig {
            num_reads: 200,
            ..Default::default()
        },
    );
    let solver = HybridSolver::paper_prototype(sampler, 0.69);

    // 3. Solve and inspect.
    let result = solver.solve(&instance, 42);
    let eg = instance.ground_energy();
    let init = result.initial.as_ref().expect("RA uses a classical seed");
    println!(
        "Greedy Search seed:   ΔE_IS = {:.2}%  ({:.2} µs classical latency)",
        result.initial_delta_e_percent(eg).unwrap(),
        init.latency_us,
    );
    println!(
        "Hybrid answer:        ΔE   = {:.2}%  (p★ = {:.3}, TTS(99%) = {} µs)",
        result.delta_e_percent(eg),
        result.success_probability(eg),
        {
            let tts = result.time_to_solution(eg, 99.0);
            if tts.is_finite() {
                format!("{tts:.1}")
            } else {
                "∞".to_string()
            }
        },
    );
    println!(
        "Wireless bit errors:  {:.1}% BER against the transmitted data",
        100.0 * instance.score_ber(&result.best_bits),
    );
    if result.best_bits == instance.tx_natural_bits {
        println!("The hybrid recovered the transmitted bits exactly.");
    }
}
