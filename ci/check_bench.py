#!/usr/bin/env python3
"""Bench-regression gate: parse BENCH_*.json and fail on invariant violations.

Checked invariants (exit status 1 on any violation, with a diagnostic):

BENCH_kernels.json
  * the incremental-CSR sweep kernel keeps a >= 3x speedup over the baseline
    adjacency-list kernel on the dense 256-spin problem;
  * every measurement is positive.

BENCH_stream.json
  * every cell's rates are in [0, 1], latencies ordered (p99 >= p50 > 0),
    and served frames add up;
  * warm-started SA reaches cold-start solution quality in no more sweeps
    than the cold start at coherence rho >= 0.5, and in *strictly fewer*
    sweeps at rho >= 0.9 (the streaming warm-start payoff; at rho ~ 0 the
    previous decision carries no information, so no ordering is required);
  * for the non-adaptive policies (always-classical / always-hybrid), the
    deadline-miss rate is monotone non-decreasing in offered load (shorter
    arrival period) at fixed rho.  The deadline-aware policy re-routes by
    queue state, so its miss rate is exempt by design.

Usage: ci/check_bench.py [--kernels PATH] [--stream PATH]
"""

import argparse
import json
import sys

failures = []


def check(ok, message):
    if not ok:
        failures.append(message)


def check_kernels(path):
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "kernels", f"{path}: wrong bench tag")
    results = bench.get("results", [])
    check(bool(results), f"{path}: no kernel measurements")
    for r in results:
        check(r["ns_per_iter"] > 0, f"{path}: non-positive time for {r['name']}")
    speedup = bench.get("derived", {}).get("sa_sweep_speedup_256")
    check(speedup is not None, f"{path}: missing derived.sa_sweep_speedup_256")
    if speedup is not None:
        check(
            speedup >= 3.0,
            f"{path}: dense-256 sweep-kernel speedup regressed to "
            f"{speedup}x (floor: 3x)",
        )
    print(f"{path}: {len(results)} measurements, dense-256 speedup {speedup}x")


def check_stream(path):
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "stream", f"{path}: wrong bench tag")
    cells = bench.get("cells", [])
    check(bool(cells), f"{path}: no stream cells")

    frames = bench["scenario"]["frames"]
    for c in cells:
        tag = f"{path}: [{c['policy']} rho={c['rho']} period={c['arrival_period_us']}]"
        check(0.0 <= c["ber"] <= 1.0, f"{tag} BER {c['ber']} out of range")
        check(
            0.0 <= c["deadline_miss_rate"] <= 1.0,
            f"{tag} miss rate {c['deadline_miss_rate']} out of range",
        )
        check(
            c["p99_latency_us"] >= c["p50_latency_us"] > 0.0,
            f"{tag} latency percentiles disordered",
        )
        check(c["throughput_per_ms"] > 0.0, f"{tag} non-positive throughput")
        check(
            c["classical_frames"] + c["hybrid_frames"] == frames,
            f"{tag} served frames do not add up",
        )
        if c["warm_pairs"] > 0:
            warm, cold = c["warm_sweeps_to_solution"], c["cold_sweeps_to_solution"]
            if c["rho"] >= 0.9:
                check(
                    warm < cold,
                    f"{tag} warm starts must beat cold strictly at high "
                    f"coherence: warm {warm} vs cold {cold}",
                )
            elif c["rho"] >= 0.5:
                check(
                    warm <= cold,
                    f"{tag} warm starts regressed: warm {warm} vs cold {cold}",
                )

    # Miss-rate monotonicity in offered load for the non-adaptive policies.
    groups = {}
    for c in cells:
        if c["policy"] in ("always-classical", "always-hybrid"):
            groups.setdefault((c["policy"], c["rho"]), []).append(c)
    for (policy, rho), group in sorted(groups.items()):
        group.sort(key=lambda c: -c["arrival_period_us"])  # increasing load
        rates = [c["deadline_miss_rate"] for c in group]
        check(
            all(a <= b for a, b in zip(rates, rates[1:])),
            f"{path}: [{policy} rho={rho}] miss rate not monotone in load: {rates}",
        )
    n_high = sum(1 for c in cells if c["rho"] >= 0.9 and c["warm_pairs"] > 0)
    check(n_high > 0, f"{path}: no high-coherence cells exercise warm starts")
    print(f"{path}: {len(cells)} cells OK ({n_high} high-coherence warm-start cells)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", default="BENCH_kernels.json")
    parser.add_argument("--stream", default="BENCH_stream.json")
    args = parser.parse_args()

    check_kernels(args.kernels)
    check_stream(args.stream)

    if failures:
        print(f"\nBENCH GATE FAILED ({len(failures)} violation(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("bench gate: all invariants hold")


if __name__ == "__main__":
    main()
