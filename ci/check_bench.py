#!/usr/bin/env python3
"""Bench-regression gate: parse BENCH_*.json and fail on invariant violations.

Checked invariants (exit status 1 on any violation, with a diagnostic):

BENCH_kernels.json
  * the incremental-CSR (Exact) sweep kernel keeps a >= 3x speedup over the
    baseline adjacency-list kernel on the dense 256-spin problem, and the
    bit-packed/f32 Fast kernel keeps >= 10x there;
  * at 512 spins (sparse) both rebuilt kernels keep >= 1.5x;
  * the Fast PIMC and SVMC engine reads keep >= 1.1x over their Exact
    counterparts;
  * the all-cores 16-read batch is strictly faster than the serial batch
    when the measuring machine actually has multiple cores (the `machine`
    stanza says so); on a single-core box the comparison is pure scheduler
    noise, so only a generous no-pathological-overhead floor (>= 0.85x)
    is enforced;
  * every measurement is positive.
  With --kernels-baseline OLD.json (e.g. the committed file before a
  re-measurement), prints an old-vs-new delta table for every measurement
  name the two files share — informational, not a gate.

BENCH_stream.json
  * every cell's rates are in [0, 1], latencies ordered (p99 >= p50 > 0),
    and served frames add up;
  * warm-started SA reaches cold-start solution quality in no more sweeps
    than the cold start at coherence rho >= 0.5, and in *strictly fewer*
    sweeps at rho >= 0.9 (the streaming warm-start payoff; at rho ~ 0 the
    previous decision carries no information, so no ordering is required);
  * for the non-adaptive policies (always-classical / always-hybrid), the
    deadline-miss rate is monotone non-decreasing in offered load (shorter
    arrival period) at fixed rho.  The deadline-aware policy re-routes by
    queue state, so its miss rate is exempt by design.

BENCH_ber.json
  * the report covers >= 3 detector families with at least one
    QUBO/anneal-backed arm, every curve is non-empty, and every rate is a
    probability.

hqw_manifest.json (--manifest, checked when the file is given)
  * the `hqw list --json` registry manifest is well-formed: a spec_version,
    unique experiment names with non-empty descriptions, all five headline
    grid experiments (ber/stream/fabric/fabric-rt/sched) present, and at
    least 19 registered experiments (the five grids + every canned figure).

BENCH_fabric_rt.json
  * every realtime point's rates are in [0, 1], wall-clock latency
    percentiles ordered (p99.9 >= p99 >= p50 > 0), sustained throughput
    and scheduler decision cost positive (decision cost under 1 ms/job —
    the control plane must stay off the data path's critical path);
  * replay_divergences == 0 on every point: the service's routing
    decisions replayed bit-exactly through the virtual-time sim.  This is
    the realtime CI contract (re-checked independently by `hqw replay` in
    the realtime-replay job).

--history (standalone mode)
  * walks the committed BENCH_*.json files across git history and prints a
    perf-trajectory table (one row per commit that touched a BENCH file);
  * gates that the *newest* committed BENCH_kernels.json still holds the
    dense-256 Fast sweep-kernel speedup floor (>= 10x) — history may wander,
    the present may not.

BENCH_fabric.json
  * every point's rates are in [0, 1], latencies ordered (p99 >= p50 > 0),
    per-backend utilization is in [0, 1], batch histograms account for
    exactly the jobs served, and backend jobs + classical fallbacks add up
    to the offered total;
  * mock-QPU backends that ran batches derived each embedding shape exactly
    once (cache misses >= 1, hits + misses == batch calls);
  * the *degraded-service* rate (served-job deadline misses + classical
    fallbacks — disjoint job sets, so a true rate) is monotone
    non-decreasing in offered load (shorter arrival period) at fixed
    (mix, cell count).  The raw miss rate alone is exempt for the same
    reason the stream gate exempts the deadline-aware policy: the fabric's
    admission control re-routes overload to the fast local fallback, which
    *lowers* misses as load grows;
  * at every (cell count, load), the batched mock-QPU mix's charged
    service per served job (backend busy time / jobs) is no worse than the
    unbatched mix's — batch formation amortizes network + programming +
    embedding overhead across the batch — strictly better wherever batches
    actually formed, and the batched mix falls back no more often (its
    amortized capacity admits more of the offered load).  Mean *end-to-end*
    served latency is deliberately not compared: admission control gives
    the two arms different served populations (the unbatched arm rejects
    most overload and serves a fast-path minority), so that comparison
    carries survivor bias;
  * at least one point actually formed a multi-job batch.

BENCH_sched.json (--sched, standalone mode)
  * the static-vs-adaptive scheduling comparison: every point's rates are
    probabilities, latency percentiles ordered, per-class accounting covers
    every job;
  * on the *calibrated* workload the adaptive arm is identical to the
    static arm, point for point — the learned identity correction is a
    bitwise no-op;
  * on the *mispredicted* workload (admission quotes from a cost model
    that underestimates sweep cost 10x) the adaptive arm's misses and p99
    are <= the static arm's, strictly better on at least one — the
    learned scheduler must dominate the static one exactly where the
    static model is wrong;
  * class tails are ordered on every summary row
    (URLLC p99 <= eMBB p99 <= Bulk p99) and the adaptive arm surfaces a
    positive prediction error under miscalibration;
  * preemption counts are consistent with the class mix: a single-class
    row never preempts, the calibrated arms preempt identically, and a
    multi-class overloaded grid preempts somewhere.

--telemetry-trace TRACE.json [--telemetry-bench BENCH_fabric_rt.json]
  (standalone mode)
  * the Chrome trace-event document is well-formed: only M/X/i/C phases,
    non-negative timestamps and durations, every span's (pid, tid) covered
    by process/thread name metadata;
  * per-job stage spans (enqueue -> admit -> form -> wait -> solve) are
    contained in their job's end-to-end span and their durations sum to no
    more than the end-to-end duration (small float slack) — the stage
    chain is contiguous by construction, so a violation means the spans
    lie about the lifecycle;
  * when --telemetry-bench is given, its TELEMETRY stanza has ordered
    percentiles (p50 <= p90 <= p99 <= max) per stage and end-to-end, all
    five realtime stages present with equal counts, and counter maxima
    present for the queue/utilization series.

--overhead ON.json OFF.json (standalone mode)
  * telemetry-on aggregate realtime throughput (sum of frames_per_sec over
    matched grid points) stays within 5% of the telemetry-off run — the
    observability plane must not tax the data path.

SHARD_*.json (via --shards, standalone mode)
  * every document is a well-formed ShardReport: bench == "shard",
    schema_version == 1, a 16-hex-digit fingerprint, a shardable
    experiment family, point_ids matching the embedded points exactly,
    all ids strictly increasing and inside [0, total_points);
  * across the group: one spec fingerprint, one (family, total_points),
    pairwise-disjoint point sets that together cover the full grid.

Usage: ci/check_bench.py [--kernels PATH] [--stream PATH] [--fabric PATH]
                         [--fabric-rt PATH] [--ber PATH] [--manifest PATH]
       ci/check_bench.py --sched BENCH_sched.json
       ci/check_bench.py --history
       ci/check_bench.py --shards SHARD.json [SHARD.json ...]
       ci/check_bench.py --telemetry-trace TRACE.json [--telemetry-bench PATH]
       ci/check_bench.py --overhead ON.json OFF.json
"""

import argparse
import json
import subprocess
import sys

failures = []


def check(ok, message):
    if not ok:
        failures.append(message)


# (derived key, floor, description) gates for BENCH_kernels.json.
KERNEL_RATIO_FLOORS = [
    ("sa_sweep_speedup_256", 3.0, "dense-256 Exact sweep kernel"),
    ("sa_sweep_speedup_fast_256", 10.0, "dense-256 Fast sweep kernel"),
    ("sa_sweep_speedup_512", 1.5, "sparse-512 Exact sweep kernel"),
    ("sa_sweep_speedup_fast_512", 1.5, "sparse-512 Fast sweep kernel"),
    ("pimc16_fast_speedup_64", 1.1, "PIMC-16 Fast engine read"),
    ("svmc_fast_speedup_64", 1.1, "SVMC Fast engine read"),
]


def check_kernels(path, baseline_path=None):
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "kernels", f"{path}: wrong bench tag")
    results = bench.get("results", [])
    check(bool(results), f"{path}: no kernel measurements")
    for r in results:
        check(r["ns_per_iter"] > 0, f"{path}: non-positive time for {r['name']}")
    derived = bench.get("derived", {})
    for key, floor, what in KERNEL_RATIO_FLOORS:
        ratio = derived.get(key)
        check(ratio is not None, f"{path}: missing derived.{key}")
        if ratio is not None:
            check(
                ratio >= floor,
                f"{path}: {what} speedup regressed to {ratio}x "
                f"(floor: {floor}x)",
            )

    # The serial-vs-all-cores comparison only means something on a machine
    # with more than one core; the emitter records what it ran on.
    machine = bench.get("machine", {})
    check(bool(machine), f"{path}: missing machine stanza")
    cores = machine.get("available_parallelism", 0)
    par = derived.get("parallel_16reads_speedup_256")
    check(par is not None, f"{path}: missing derived.parallel_16reads_speedup_256")
    if par is not None:
        if cores > 1:
            check(
                par > 1.0,
                f"{path}: all-cores 16-read batch not strictly faster than "
                f"serial ({par}x on {cores} cores)",
            )
        else:
            check(
                par >= 0.85,
                f"{path}: single-core fan-out overhead out of the noise "
                f"band ({par}x; floor 0.85x)",
            )

    if baseline_path is not None:
        _print_kernel_deltas(baseline_path, path, results)

    print(
        f"{path}: {len(results)} measurements OK "
        f"(dense-256 exact {derived.get('sa_sweep_speedup_256')}x, "
        f"fast {derived.get('sa_sweep_speedup_fast_256')}x, "
        f"{cores}-core box)"
    )


def _print_kernel_deltas(baseline_path, path, results):
    """Old-vs-new per-measurement table (informational, never a gate)."""
    with open(baseline_path) as f:
        old_bench = json.load(f)
    old = {r["name"]: r["ns_per_iter"] for r in old_bench.get("results", [])}
    shared = [r for r in results if r["name"] in old]
    if not shared:
        print(f"{path}: no measurement names shared with {baseline_path}")
        return
    if all(old[r["name"]] == r["ns_per_iter"] for r in shared):
        print(f"{path}: identical to committed baseline {baseline_path}")
        return
    print(f"{path}: deltas vs {baseline_path} (negative = faster now):")
    name_w = max(len(r["name"]) for r in shared)
    print(f"  {'name':<{name_w}} {'old ns':>12} {'new ns':>12} {'delta':>8}")
    for r in shared:
        o, n = old[r["name"]], r["ns_per_iter"]
        delta = 100.0 * (n - o) / o
        print(f"  {r['name']:<{name_w}} {o:>12.0f} {n:>12.0f} {delta:>+7.1f}%")
    for r in results:
        if r["name"] not in old:
            print(f"  {r['name']:<{name_w}} {'-':>12} {r['ns_per_iter']:>12.0f}      new")


def check_ber(path):
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "ber", f"{path}: wrong bench tag")
    series = bench.get("series", [])
    check(len(series) >= 3, f"{path}: need >= 3 detectors, got {len(series)}")
    check(
        any(s.get("qubo_backed") for s in series),
        f"{path}: no QUBO/anneal-backed arm",
    )
    for s in series:
        tag = f"{path}: [{s.get('detector', '?')}]"
        check(bool(s.get("points")), f"{tag} empty curve")
        for p in s.get("points", []):
            check(
                0.0 <= p["ber"] <= 1.0,
                f"{tag} BER {p['ber']} out of range at {p['snr_db']} dB",
            )
            check(
                0.0 <= p["bler"] <= 1.0,
                f"{tag} BLER {p['bler']} out of range at {p['snr_db']} dB",
            )
    print(f"{path}: {len(series)} detector curves OK")


def check_manifest(path):
    with open(path) as f:
        manifest = json.load(f)
    check(
        isinstance(manifest.get("spec_version"), int),
        f"{path}: missing integer spec_version",
    )
    experiments = manifest.get("experiments", [])
    check(len(experiments) >= 19, f"{path}: registry shrank to {len(experiments)}")
    names = [e.get("name") for e in experiments]
    check(len(set(names)) == len(names), f"{path}: duplicate experiment names")
    for headline in ("ber", "stream", "fabric", "fabric-rt", "sched"):
        check(headline in names, f"{path}: headline experiment '{headline}' missing")
    for e in experiments:
        check(
            bool(e.get("name")) and bool(e.get("description")),
            f"{path}: entry {e} needs a name and a description",
        )
    print(f"{path}: {len(experiments)} registered experiments OK")


def check_stream(path):
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "stream", f"{path}: wrong bench tag")
    cells = bench.get("cells", [])
    check(bool(cells), f"{path}: no stream cells")

    frames = bench["scenario"]["frames"]
    for c in cells:
        tag = f"{path}: [{c['policy']} rho={c['rho']} period={c['arrival_period_us']}]"
        check(0.0 <= c["ber"] <= 1.0, f"{tag} BER {c['ber']} out of range")
        check(
            0.0 <= c["deadline_miss_rate"] <= 1.0,
            f"{tag} miss rate {c['deadline_miss_rate']} out of range",
        )
        check(
            c["p99_latency_us"] >= c["p50_latency_us"] > 0.0,
            f"{tag} latency percentiles disordered",
        )
        check(c["throughput_per_ms"] > 0.0, f"{tag} non-positive throughput")
        check(
            c["classical_frames"] + c["hybrid_frames"] == frames,
            f"{tag} served frames do not add up",
        )
        if c["warm_pairs"] > 0:
            warm, cold = c["warm_sweeps_to_solution"], c["cold_sweeps_to_solution"]
            if c["rho"] >= 0.9:
                check(
                    warm < cold,
                    f"{tag} warm starts must beat cold strictly at high "
                    f"coherence: warm {warm} vs cold {cold}",
                )
            elif c["rho"] >= 0.5:
                check(
                    warm <= cold,
                    f"{tag} warm starts regressed: warm {warm} vs cold {cold}",
                )

    # Miss-rate monotonicity in offered load for the non-adaptive policies.
    groups = {}
    for c in cells:
        if c["policy"] in ("always-classical", "always-hybrid"):
            groups.setdefault((c["policy"], c["rho"]), []).append(c)
    for (policy, rho), group in sorted(groups.items()):
        group.sort(key=lambda c: -c["arrival_period_us"])  # increasing load
        rates = [c["deadline_miss_rate"] for c in group]
        check(
            all(a <= b for a, b in zip(rates, rates[1:])),
            f"{path}: [{policy} rho={rho}] miss rate not monotone in load: {rates}",
        )
    n_high = sum(1 for c in cells if c["rho"] >= 0.9 and c["warm_pairs"] > 0)
    check(n_high > 0, f"{path}: no high-coherence cells exercise warm starts")
    print(f"{path}: {len(cells)} cells OK ({n_high} high-coherence warm-start cells)")


def check_fabric(path):
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "fabric", f"{path}: wrong bench tag")
    points = bench.get("points", [])
    check(bool(points), f"{path}: no fabric points")

    frames_per_cell = bench["scenario"]["frames_per_cell"]
    any_batched = False
    for p in points:
        tag = f"{path}: [{p['mix']} cells={p['n_cells']} period={p['arrival_period_us']}]"
        check(p["jobs"] == frames_per_cell * p["n_cells"], f"{tag} wrong job count")
        for rate in ("ber", "deadline_miss_rate", "fallback_rate", "served_miss_rate"):
            check(0.0 <= p[rate] <= 1.0, f"{tag} {rate} {p[rate]} out of range")
        check(
            p["served_miss_rate"] + p["fallback_rate"] <= 1.0 + 1e-12,
            f"{tag} served misses and fallbacks overlap",
        )
        check(
            p["served_miss_rate"] <= p["deadline_miss_rate"] + 1e-12,
            f"{tag} served-miss rate exceeds the overall miss rate",
        )
        check(
            p["p99_latency_us"] >= p["p50_latency_us"] > 0.0,
            f"{tag} latency percentiles disordered",
        )
        backend_jobs = sum(b["jobs"] for b in p["backends"])
        fallback_jobs = round(p["fallback_rate"] * p["jobs"])
        check(
            backend_jobs + fallback_jobs == p["jobs"],
            f"{tag} backend jobs + fallbacks != offered jobs",
        )
        for b in p["backends"]:
            btag = f"{tag} {b['name']}"
            check(
                0.0 <= b["utilization"] <= 1.0,
                f"{btag} utilization {b['utilization']} out of [0, 1]",
            )
            hist_jobs = sum((i + 1) * c for i, c in enumerate(b["batch_histogram"]))
            check(hist_jobs == b["jobs"], f"{btag} batch histogram loses jobs")
            if b["mean_batch"] > 1.0:
                any_batched = True
            if b["name"] == "mock-qpu" and b["batches"] > 0:
                check(
                    b["embed_cache_misses"] >= 1,
                    f"{btag} served batches without deriving an embedding",
                )
                check(
                    b["embed_cache_hits"] + b["embed_cache_misses"] == b["batches"],
                    f"{btag} cache lookups != batch calls",
                )
    check(any_batched, f"{path}: no point ever formed a multi-job batch")

    # Degraded-service monotonicity in offered load at fixed (mix, cells).
    groups = {}
    for p in points:
        groups.setdefault((p["mix"], p["n_cells"]), []).append(p)
    for (mix, cells), group in sorted(groups.items()):
        group.sort(key=lambda p: -p["arrival_period_us"])  # increasing load
        # served_miss_rate and fallback_rate are disjoint job sets, so this
        # is a true rate (<= 1): the fraction of jobs the fabric did not
        # serve within budget.
        degraded = [p["served_miss_rate"] + p["fallback_rate"] for p in group]
        check(
            all(a <= b + 1e-12 for a, b in zip(degraded, degraded[1:])),
            f"{path}: [{mix} cells={cells}] degraded-service rate not "
            f"monotone in load: {degraded}",
        )

    # Batched mock-QPU must beat (or match) unbatched at equal load.
    qpu = {}
    for p in points:
        if p["mix"] in ("qpu-batched", "qpu-unbatched"):
            qpu.setdefault((p["n_cells"], p["arrival_period_us"]), {})[p["mix"]] = p
    pairs = 0
    for (cells, period), arms in sorted(qpu.items()):
        if len(arms) != 2:
            continue
        pairs += 1
        batched, unbatched = arms["qpu-batched"], arms["qpu-unbatched"]
        b_qpu = batched["backends"][0]
        u_qpu = unbatched["backends"][0]
        if b_qpu["jobs"] > 0 and u_qpu["jobs"] > 0:
            amortized = b_qpu["mean_service_us"] <= u_qpu["mean_service_us"]
            if b_qpu["mean_batch"] > 1.0:
                amortized = b_qpu["mean_service_us"] < u_qpu["mean_service_us"]
            check(
                amortized,
                f"{path}: [cells={cells} period={period}] batched QPU charged "
                f"{b_qpu['mean_service_us']} us/job (mean batch "
                f"{b_qpu['mean_batch']}), not amortizing vs unbatched "
                f"{u_qpu['mean_service_us']} us/job",
            )
        check(
            batched["fallback_rate"] <= unbatched["fallback_rate"],
            f"{path}: [cells={cells} period={period}] batched QPU falls back "
            f"more ({batched['fallback_rate']}) than unbatched "
            f"({unbatched['fallback_rate']})",
        )
    check(pairs > 0, f"{path}: no batched-vs-unbatched QPU pairs to compare")
    print(f"{path}: {len(points)} points OK ({pairs} batched-vs-unbatched pairs)")


def check_fabric_rt(path):
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "fabric-rt", f"{path}: wrong bench tag")
    points = bench.get("points", [])
    check(bool(points), f"{path}: no realtime points")

    frames_per_cell = bench["scenario"]["frames_per_cell"]
    for p in points:
        tag = f"{path}: [{p['mix']} cells={p['n_cells']} period={p['arrival_period_us']}]"
        check(p["jobs"] == frames_per_cell * p["n_cells"], f"{tag} wrong job count")
        for rate in ("ber", "fallback_rate"):
            check(0.0 <= p[rate] <= 1.0, f"{tag} {rate} {p[rate]} out of range")
        check(p["frames_per_sec"] > 0.0, f"{tag} non-positive throughput")
        check(
            p["p999_ms"] >= p["p99_ms"] >= p["p50_ms"] > 0.0,
            f"{tag} wall-clock latency percentiles disordered",
        )
        # The charge-only control plane must stay cheap: a scheduling
        # decision is virtual bookkeeping, never a solve.
        check(
            0.0 < p["decision_ns_per_job"] < 1e6,
            f"{tag} scheduler decision cost {p['decision_ns_per_job']} ns/job "
            f"out of the sane band (0, 1 ms)",
        )
        check(
            p["replay_divergences"] == 0,
            f"{tag} {p['replay_divergences']} routing decision(s) diverged "
            f"from the virtual-time sim",
        )
    peak = max(p["frames_per_sec"] for p in points)
    print(f"{path}: {len(points)} realtime points OK (peak {peak:.0f} frames/s)")


# Urgency order of the scheduling plane's priority classes: tails must be
# ordered this way on every (workload, arm) summary row.
SCHED_CLASS_ORDER = ("urllc", "embb", "bulk")


def check_sched(path):
    """Validate a BENCH_sched.json static-vs-adaptive comparison document."""
    with open(path) as f:
        bench = json.load(f)
    check(bench.get("bench") == "sched", f"{path}: wrong bench tag")
    points = bench.get("points", [])
    check(bool(points), f"{path}: no sched points")

    frames_per_cell = bench["scenario"]["frames_per_cell"]
    for p in points:
        tag = (
            f"{path}: [{p['workload']} cells={p['n_cells']} "
            f"period={p['arrival_period_us']}]"
        )
        for arm in ("static", "adaptive"):
            r = p[arm]
            atag = f"{tag} {arm}"
            check(
                r["jobs"] == frames_per_cell * p["n_cells"],
                f"{atag}: wrong job count",
            )
            for rate in ("ber", "deadline_miss_rate", "fallback_rate"):
                check(
                    0.0 <= r[rate] <= 1.0, f"{atag}: {rate} {r[rate]} out of range"
                )
            check(
                r["p99_latency_us"] >= r["p50_latency_us"] > 0.0,
                f"{atag}: latency percentiles disordered",
            )
            classes = r.get("classes", [])
            check(bool(classes), f"{atag}: no per-class accounting")
            check(
                sum(c["jobs"] for c in classes) == r["jobs"],
                f"{atag}: per-class jobs do not cover the run",
            )
            for c in classes:
                check(
                    c["misses"] <= c["jobs"],
                    f"{atag}: class {c['class']} misses exceed its jobs",
                )
        # The static policy never learns, so it must report zero
        # prediction error (the key is omitted at zero).
        check(
            p["static"].get("prediction_mae_us", 0.0) == 0.0,
            f"{tag}: static arm claims a learned prediction error",
        )
        if p["workload"] == "calibrated":
            check(
                p["static"] == p["adaptive"],
                f"{tag}: calibrated arms diverge — the identity correction "
                f"must be a bitwise no-op",
            )

    check(
        any(
            p["adaptive"].get("prediction_mae_us", 0.0) > 0.0
            for p in points
            if p["workload"] == "mispredicted"
        ),
        f"{path}: adaptive arm surfaces no prediction error under "
        f"miscalibration",
    )

    summary = bench.get("summary", [])
    rows = {(a["workload"], a["arm"]): a for a in summary}
    check(
        len(rows) == len(summary) == 4,
        f"{path}: expected 4 summary rows (2 workloads x 2 arms), "
        f"got {len(summary)}",
    )
    multi_class = False
    for a in summary:
        tag = f"{path}: [{a['workload']}/{a['arm']}]"
        check(
            sum(c["jobs"] for c in a["classes"]) == a["jobs"],
            f"{tag} summary classes do not cover the arm's jobs",
        )
        if len(a["classes"]) >= 2:
            multi_class = True
        else:
            check(
                a["preemptions"] == 0,
                f"{tag} preempted {a['preemptions']} job(s) with a single "
                f"class — nothing outranks anything",
            )
        p99s = {c["class"]: c["p99_latency_us"] for c in a["classes"]}
        present = [name for name in SCHED_CLASS_ORDER if name in p99s]
        for hi, lo in zip(present, present[1:]):
            check(
                p99s[hi] <= p99s[lo],
                f"{tag} class tails disordered: {hi} p99 {p99s[hi]} > "
                f"{lo} p99 {p99s[lo]}",
            )

    cal_static = rows.get(("calibrated", "static"))
    cal_adaptive = rows.get(("calibrated", "adaptive"))
    if cal_static and cal_adaptive:
        for key in ("jobs", "misses", "fallback_rate", "p99_latency_us", "preemptions"):
            check(
                cal_static[key] == cal_adaptive[key],
                f"{path}: calibrated summaries differ on {key} "
                f"({cal_static[key]} vs {cal_adaptive[key]})",
            )

    mis_static = rows.get(("mispredicted", "static"))
    mis_adaptive = rows.get(("mispredicted", "adaptive"))
    if mis_static and mis_adaptive:
        check(
            mis_adaptive["misses"] <= mis_static["misses"],
            f"{path}: adaptive misses {mis_adaptive['misses']} exceed static "
            f"{mis_static['misses']} on the mispredicted workload",
        )
        check(
            mis_adaptive["p99_latency_us"] <= mis_static["p99_latency_us"],
            f"{path}: adaptive p99 {mis_adaptive['p99_latency_us']} us exceeds "
            f"static {mis_static['p99_latency_us']} us on the mispredicted "
            f"workload",
        )
        check(
            mis_adaptive["misses"] < mis_static["misses"]
            or mis_adaptive["p99_latency_us"] < mis_static["p99_latency_us"],
            f"{path}: adaptive does not strictly beat static anywhere on the "
            f"mispredicted workload",
        )

    if multi_class:
        check(
            sum(a["preemptions"] for a in summary) > 0,
            f"{path}: a multi-class overloaded grid never preempted",
        )
    if not failures:
        print(
            f"{path}: {len(points)} points OK (mispredicted misses "
            f"{mis_adaptive['misses']} adaptive vs {mis_static['misses']} "
            f"static; p99 {mis_adaptive['p99_latency_us']} vs "
            f"{mis_static['p99_latency_us']} us)"
        )


# The realtime frame lifecycle, in pipeline order. The sequencer emits the
# first three stages, the worker lanes the last two; together they tile the
# delivered -> completed interval exactly.
RT_STAGES = ("enqueue", "admit", "form", "wait", "solve")

# Absolute slack (µs) for float round-off when comparing span arithmetic.
SPAN_SLACK_US = 1.0


def check_telemetry(trace_path, bench_path=None):
    """Validate a Chrome trace-event file (and optionally the TELEMETRY
    stanza of the BENCH_fabric_rt.json emitted by the same run)."""
    with open(trace_path) as f:
        doc = json.load(f)
    check(
        doc.get("displayTimeUnit") == "ms",
        f"{trace_path}: missing displayTimeUnit",
    )
    events = doc.get("traceEvents", [])
    check(bool(events), f"{trace_path}: no trace events")
    for e in events:
        check(
            e.get("ph") in ("M", "X", "i", "C"),
            f"{trace_path}: unexpected event phase {e.get('ph')!r}",
        )
        if e.get("ph") != "M":
            check(
                e.get("ts", -1.0) >= 0.0,
                f"{trace_path}: negative timestamp on {e.get('name')!r}",
            )

    spans = [e for e in events if e.get("ph") == "X"]
    counters = [e for e in events if e.get("ph") == "C"]
    check(bool(spans), f"{trace_path}: no span events")
    named_pids = set()
    named_threads = set()
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            named_pids.add(e["pid"])
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            named_threads.add((e["pid"], e["tid"]))
    for e in spans:
        check(
            e.get("dur", -1.0) >= 0.0,
            f"{trace_path}: negative duration on {e.get('name')!r}",
        )
        check(
            e["pid"] in named_pids,
            f"{trace_path}: span {e.get('name')!r} in unnamed process {e['pid']}",
        )
        check(
            (e["pid"], e["tid"]) in named_threads,
            f"{trace_path}: span {e.get('name')!r} on unnamed thread "
            f"({e['pid']}, {e['tid']})",
        )

    # Per-job stage chains vs their end-to-end span.
    stage_spans = {}  # (pid, job) -> {stage: (ts, dur)}
    job_spans = {}  # (pid, job) -> (ts, dur)
    for e in spans:
        job = e.get("args", {}).get("job")
        if job is None:
            continue
        key = (e["pid"], job)
        if e.get("cat") == "stage":
            check(
                e["name"] not in stage_spans.get(key, {}),
                f"{trace_path}: duplicate stage {e['name']!r} for job {key}",
            )
            stage_spans.setdefault(key, {})[e["name"]] = (e["ts"], e["dur"])
        elif e.get("cat") == "job":
            check(job_spans.get(key) is None, f"{trace_path}: duplicate job span {key}")
            job_spans[key] = (e["ts"], e["dur"])
    checked_jobs = 0
    for key, stages in stage_spans.items():
        if key not in job_spans:
            continue
        checked_jobs += 1
        job_ts, job_dur = job_spans[key]
        stage_sum = 0.0
        for stage, (ts, dur) in stages.items():
            stage_sum += dur
            check(
                ts >= job_ts - SPAN_SLACK_US
                and ts + dur <= job_ts + job_dur + SPAN_SLACK_US,
                f"{trace_path}: stage {stage!r} of job {key} "
                f"[{ts}, {ts + dur}] escapes its end-to-end span "
                f"[{job_ts}, {job_ts + job_dur}]",
            )
        check(
            stage_sum <= job_dur * (1.0 + 1e-9) + SPAN_SLACK_US,
            f"{trace_path}: job {key} stage durations sum to {stage_sum} us, "
            f"more than the end-to-end {job_dur} us",
        )
    check(checked_jobs > 0, f"{trace_path}: no job carries both stage and job spans")

    if bench_path is not None:
        _check_telemetry_stanza(bench_path)

    print(
        f"{trace_path}: {len(spans)} spans over {checked_jobs} jobs, "
        f"{len(counters)} counter samples OK"
    )


def _check_telemetry_stanza(bench_path):
    """Validate the TELEMETRY stanza a --telemetry realtime run embeds."""
    with open(bench_path) as f:
        bench = json.load(f)
    stanza = bench.get("telemetry")
    check(stanza is not None, f"{bench_path}: no telemetry stanza")
    if stanza is None:
        return
    check(stanza.get("spans", 0) > 0, f"{bench_path}: telemetry saw no spans")
    check(stanza.get("samples", 0) > 0, f"{bench_path}: sampler took no readings")
    stages = {s["stage"]: s for s in stanza.get("stages", [])}
    for name in RT_STAGES:
        check(name in stages, f"{bench_path}: telemetry stage {name!r} missing")
    counts = {s["count"] for s in stages.values()}
    check(
        len(counts) <= 1,
        f"{bench_path}: stage counts differ {sorted(counts)} — the lifecycle "
        f"must record every stage once per job",
    )
    for entry in list(stanza.get("stages", [])) + [stanza.get("end_to_end", {})]:
        name = entry.get("stage", "?")
        check(entry.get("count", 0) > 0, f"{bench_path}: [{name}] empty histogram")
        check(
            0.0 <= entry.get("p50_us", -1.0)
            <= entry.get("p90_us", -1.0)
            <= entry.get("p99_us", -1.0)
            <= entry.get("max_us", -1.0),
            f"{bench_path}: [{name}] percentiles disordered: {entry}",
        )
    counter_names = {c["name"] for c in stanza.get("counters", [])}
    for series in ("in_flight",):
        check(
            series in counter_names,
            f"{bench_path}: counter series {series!r} missing from telemetry",
        )


# One-sided floor: telemetry-on aggregate throughput vs telemetry-off.
OVERHEAD_FLOOR = 0.95


def check_overhead(on_path, off_path):
    """Gate the observability tax: a --telemetry realtime run must keep at
    least OVERHEAD_FLOOR of the plain run's aggregate throughput."""

    def points_by_key(path):
        with open(path) as f:
            bench = json.load(f)
        check(bench.get("bench") == "fabric-rt", f"{path}: wrong bench tag")
        return {
            (p["mix"], p["n_cells"], p["arrival_period_us"]): p
            for p in bench.get("points", [])
        }

    on, off = points_by_key(on_path), points_by_key(off_path)
    shared = sorted(set(on) & set(off))
    check(bool(shared), f"--overhead: {on_path} and {off_path} share no grid points")
    check(
        set(on) == set(off),
        f"--overhead: {on_path} and {off_path} cover different grids",
    )
    if not shared:
        return
    total_on = sum(on[k]["frames_per_sec"] for k in shared)
    total_off = sum(off[k]["frames_per_sec"] for k in shared)
    ratio = total_on / total_off if total_off > 0 else 0.0
    check(
        ratio >= OVERHEAD_FLOOR,
        f"--overhead: telemetry-on throughput is {ratio:.3f}x of the plain "
        f"run (floor: {OVERHEAD_FLOOR}x) — observation is taxing the data path",
    )
    print(
        f"telemetry overhead OK: {len(shared)} points, on/off aggregate "
        f"throughput ratio {ratio:.3f}x (floor {OVERHEAD_FLOOR}x)"
    )


# Experiment families `hqw run --shard` can produce documents for.
SHARDABLE_FAMILIES = {"ber", "stream", "fabric", "sched"}


def check_shard(paths):
    """Validate a group of ShardReport documents as one shard partition."""
    docs = []
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        check(doc.get("bench") == "shard", f"{path}: bench != 'shard'")
        check(
            doc.get("schema_version") == 1,
            f"{path}: schema_version {doc.get('schema_version')} != 1",
        )
        fingerprint = doc.get("fingerprint", "")
        check(
            len(fingerprint) == 16
            and all(c in "0123456789abcdef" for c in fingerprint),
            f"{path}: fingerprint '{fingerprint}' is not 16 lowercase hex digits",
        )
        check(
            doc.get("experiment") in SHARDABLE_FAMILIES,
            f"{path}: experiment '{doc.get('experiment')}' is not shardable",
        )
        shard = doc.get("shard", {})
        index, count = shard.get("index"), shard.get("count")
        check(
            isinstance(index, int) and isinstance(count, int) and 1 <= index <= count,
            f"{path}: bad shard selector {shard}",
        )
        total = doc.get("total_points")
        check(isinstance(total, int) and total > 0, f"{path}: bad total_points {total}")
        point_ids = doc.get("point_ids", [])
        body_ids = [p.get("id") for p in doc.get("points", [])]
        check(
            point_ids == body_ids,
            f"{path}: point_ids header does not match the points array",
        )
        check(
            all(isinstance(i, int) and 0 <= i < total for i in point_ids),
            f"{path}: point id(s) outside [0, {total})",
        )
        check(
            point_ids == sorted(set(point_ids)),
            f"{path}: point ids are not strictly increasing",
        )
        docs.append((path, doc))

    if not docs:
        check(False, "--shards: no shard files given")
        return
    path0, doc0 = docs[0]
    key0 = (doc0.get("fingerprint"), doc0.get("experiment"), doc0.get("total_points"))
    for path, doc in docs[1:]:
        key = (doc.get("fingerprint"), doc.get("experiment"), doc.get("total_points"))
        check(
            key == key0,
            f"{path}: (fingerprint, experiment, total_points) {key} "
            f"differs from {path0}'s {key0}",
        )
    owner = {}
    for path, doc in docs:
        for i in doc.get("point_ids", []):
            check(
                i not in owner,
                f"point id {i} appears in both {owner.get(i)} and {path}",
            )
            owner[i] = path
    total = doc0.get("total_points") or 0
    missing = [i for i in range(total) if i not in owner]
    check(
        not missing,
        f"shard group misses point id(s) {missing[:8]} of 0..{total}",
    )
    if not failures:
        print(
            f"shards OK: {len(docs)} document(s) tile all {total} "
            f"{doc0.get('experiment')} grid points, fingerprint {key0[0]}"
        )


def _sched_summary(bench, workload, arm):
    """The (workload, arm) summary row of a BENCH_sched.json document."""
    for a in bench["summary"]:
        if a["workload"] == workload and a["arm"] == arm:
            return a
    return None


def _sched_class_p99(bench, workload, arm, name):
    """Per-class p99 from a BENCH_sched.json summary row, None if absent."""
    row = _sched_summary(bench, workload, arm)
    if row is None:
        return None
    for c in row["classes"]:
        if c["class"] == name:
            return c["p99_latency_us"]
    return None


def _stage_p50(bench, stage):
    """p50 of a telemetry stage, None when the run carried no telemetry
    (the committed BENCH files are generated without --telemetry)."""
    for s in bench["telemetry"]["stages"]:
        if s["stage"] == stage:
            return s["p50_us"]
    return None


# The committed BENCH files the --history walk tracks, with the metrics
# each contributes to the trajectory table (file, column, extractor).
HISTORY_COLUMNS = [
    ("BENCH_kernels.json", "exact256", lambda b: b["derived"]["sa_sweep_speedup_256"]),
    ("BENCH_kernels.json", "fast256", lambda b: b["derived"]["sa_sweep_speedup_fast_256"]),
    ("BENCH_kernels.json", "pimc16", lambda b: b["derived"]["pimc16_fast_speedup_64"]),
    ("BENCH_fabric.json", "fab_pts", lambda b: len(b["points"])),
    ("BENCH_fabric_rt.json", "rt_pts", lambda b: len(b["points"])),
    ("BENCH_fabric_rt.json", "rt_fps", lambda b: max(p["frames_per_sec"] for p in b["points"])),
    ("BENCH_fabric_rt.json", "rt_dec_ns", lambda b: max(p["decision_ns_per_job"] for p in b["points"])),
    ("BENCH_fabric_rt.json", "solve_p50", lambda b: _stage_p50(b, "solve")),
    ("BENCH_fabric_rt.json", "wait_p50", lambda b: _stage_p50(b, "wait")),
    ("BENCH_fabric_rt.json", "e2e_p50", lambda b: b["telemetry"]["end_to_end"]["p50_us"]),
    ("BENCH_sched.json", "sch_ad_p99", lambda b: _sched_summary(b, "mispredicted", "adaptive")["p99_latency_us"]),
    ("BENCH_sched.json", "sch_st_p99", lambda b: _sched_summary(b, "mispredicted", "static")["p99_latency_us"]),
    ("BENCH_sched.json", "urllc_p99", lambda b: _sched_class_p99(b, "mispredicted", "adaptive", "urllc")),
    ("BENCH_sched.json", "embb_p99", lambda b: _sched_class_p99(b, "mispredicted", "adaptive", "embb")),
    ("BENCH_sched.json", "bulk_p99", lambda b: _sched_class_p99(b, "mispredicted", "adaptive", "bulk")),
]

# Floor the newest commit in the walk must hold (the committed state, as
# opposed to the fresh re-measurement the regular gate checks).
HISTORY_FAST256_FLOOR = 10.0


def _git(*argv):
    return subprocess.run(
        ["git", *argv], check=True, capture_output=True, text=True
    ).stdout


def _show_json(sha, path):
    try:
        out = subprocess.run(
            ["git", "show", f"{sha}:{path}"], check=True, capture_output=True, text=True
        ).stdout
        return json.loads(out)
    except (subprocess.CalledProcessError, json.JSONDecodeError):
        return None


def check_history():
    """Prints the perf trajectory of every committed BENCH_*.json and gates
    the newest commit's dense-256 Fast speedup."""
    tracked = sorted({file for file, _, _ in HISTORY_COLUMNS})
    log = _git("log", "--format=%H|%h|%cs", "--", *tracked)
    commits = [line.split("|") for line in log.splitlines() if line]
    if not commits:
        check(False, "--history: no commits touch any BENCH_*.json")
        return
    commits.reverse()  # oldest first

    columns = [name for _, name, _ in HISTORY_COLUMNS]
    header = f"{'commit':<10} {'date':<11}" + "".join(f" {c:>10}" for c in columns)
    print("perf trajectory (committed BENCH_*.json across git history):")
    print(header)
    print("-" * len(header))
    newest_fast256 = None
    for sha, short, date in commits:
        docs = {file: _show_json(sha, file) for file in tracked}
        row = [f"{short:<10} {date:<11}"]
        for file, _, extract in HISTORY_COLUMNS:
            doc = docs[file]
            try:
                value = extract(doc) if doc is not None else None
            except (KeyError, TypeError, ValueError):
                value = None
            if value is None:
                row.append(f" {'-':>10}")
            elif isinstance(value, int):
                row.append(f" {value:>10}")
            else:
                row.append(f" {value:>10.1f}")
        print("".join(row))
        kernels = docs.get("BENCH_kernels.json")
        if kernels is not None:
            fast = kernels.get("derived", {}).get("sa_sweep_speedup_fast_256")
            if fast is not None:
                newest_fast256 = fast

    check(
        newest_fast256 is not None,
        "--history: no commit carries derived.sa_sweep_speedup_fast_256",
    )
    if newest_fast256 is not None:
        check(
            newest_fast256 >= HISTORY_FAST256_FLOOR,
            f"--history: newest committed dense-256 Fast speedup "
            f"{newest_fast256}x under the {HISTORY_FAST256_FLOOR}x floor",
        )
        print(
            f"\nnewest committed dense-256 Fast speedup: {newest_fast256}x "
            f"(floor: {HISTORY_FAST256_FLOOR}x)"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", default="BENCH_kernels.json")
    parser.add_argument(
        "--kernels-baseline",
        default=None,
        help="older BENCH_kernels.json; prints an old-vs-new delta table",
    )
    parser.add_argument("--stream", default="BENCH_stream.json")
    parser.add_argument("--fabric", default="BENCH_fabric.json")
    parser.add_argument("--fabric-rt", default="BENCH_fabric_rt.json")
    parser.add_argument("--ber", default="BENCH_ber.json")
    parser.add_argument(
        "--manifest",
        default=None,
        help="hqw list --json output; registry shape is checked when given",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="standalone mode: print the committed BENCH_*.json perf "
        "trajectory across git history and gate the newest commit",
    )
    parser.add_argument(
        "--shards",
        nargs="+",
        default=None,
        metavar="SHARD.json",
        help="standalone mode: validate a group of hqw ShardReport "
        "documents (headers, fingerprints, exact grid coverage)",
    )
    parser.add_argument(
        "--telemetry-trace",
        default=None,
        metavar="TRACE.json",
        help="standalone mode: validate a Chrome trace-event file emitted "
        "by a --telemetry run (span nesting, stage-sum containment)",
    )
    parser.add_argument(
        "--telemetry-bench",
        default=None,
        metavar="PATH",
        help="with --telemetry-trace: also validate the TELEMETRY stanza "
        "of this BENCH_fabric_rt.json (ordered percentiles, all stages)",
    )
    parser.add_argument(
        "--overhead",
        nargs=2,
        default=None,
        metavar=("ON.json", "OFF.json"),
        help="standalone mode: gate telemetry-on vs telemetry-off "
        "aggregate realtime throughput (one-sided 5%% band)",
    )
    parser.add_argument(
        "--sched",
        default=None,
        metavar="BENCH_sched.json",
        help="standalone mode: gate the static-vs-adaptive scheduler "
        "comparison (calibrated byte-identity, adaptive dominance on the "
        "mispredicted workload, per-class tail ordering)",
    )
    args = parser.parse_args()

    if args.history:
        check_history()
    elif args.shards is not None:
        check_shard(args.shards)
    elif args.telemetry_trace is not None:
        check_telemetry(args.telemetry_trace, bench_path=args.telemetry_bench)
    elif args.overhead is not None:
        check_overhead(args.overhead[0], args.overhead[1])
    elif args.sched is not None:
        check_sched(args.sched)
    else:
        check_kernels(args.kernels, baseline_path=args.kernels_baseline)
        check_ber(args.ber)
        check_stream(args.stream)
        check_fabric(args.fabric)
        check_fabric_rt(args.fabric_rt)
        if args.manifest is not None:
            check_manifest(args.manifest)

    if failures:
        print(f"\nBENCH GATE FAILED ({len(failures)} violation(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("bench gate: all invariants hold")


if __name__ == "__main__":
    main()
